package axi

import (
	"testing"

	"zynqfusion/internal/sim"
)

func ps() sim.Clock { return sim.NewClock("ps", 533e6) }
func pl() sim.Clock { return sim.NewClock("pl", 100e6) }

func TestLiteRegisterFile(t *testing.T) {
	l := NewLite(ps())
	wt := l.Write(0x10, 1234)
	if wt != ps().Cycles(GPWordCycles) {
		t.Errorf("write time %v", wt)
	}
	v, rt := l.Read(0x10)
	if v != 1234 {
		t.Errorf("read back %d", v)
	}
	if rt != ps().Cycles(GPWordCycles) {
		t.Errorf("read time %v", rt)
	}
	if l.Writes != 1 || l.Reads != 1 {
		t.Errorf("counters %d/%d", l.Writes, l.Reads)
	}
	if v, _ := l.Read(0x99); v != 0 {
		t.Errorf("unwritten register %d", v)
	}
}

func TestBurstTiming(t *testing.T) {
	b := NewACP(pl())
	tm := b.Transfer(100)
	want := pl().CyclesF(float64(b.Setup) + b.BeatsPerWord*100)
	if tm != want {
		t.Errorf("transfer %v want %v", tm, want)
	}
	if b.Words != 100 || b.Transfers != 1 {
		t.Errorf("stats %d/%d", b.Words, b.Transfers)
	}
}

func TestBurstZeroWords(t *testing.T) {
	b := NewACP(pl())
	if tm := b.Transfer(0); tm != pl().CyclesF(float64(b.Setup)) {
		t.Errorf("empty transfer should cost only setup, got %v", tm)
	}
}

func TestBurstNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewACP(pl()).Transfer(-1)
}

func TestBurstAmortizesSetup(t *testing.T) {
	// Large transfers approach the per-word rate; small ones are dominated
	// by setup — the root cause of the paper's small-frame crossover.
	b := NewACP(pl())
	small := b.Transfer(4)
	large := b.Transfer(4000)
	perWordSmall := float64(small) / 4
	perWordLarge := float64(large) / 4000
	if perWordSmall < 5*perWordLarge {
		t.Errorf("setup not dominant for small bursts: %g vs %g ps/word", perWordSmall, perWordLarge)
	}
}

func TestGPTransferCost(t *testing.T) {
	tm := GPTransfer(ps(), 100)
	if tm != ps().Cycles(100*GPWordCycles) {
		t.Errorf("GP transfer %v", tm)
	}
	// The paper's comparison: GP word-by-word vs ACP burst for a row.
	acp := NewACP(pl()).Transfer(100)
	if tm < acp {
		t.Errorf("GP (%v) should be slower than ACP (%v) for 100 words", tm, acp)
	}
}

// Package dvfs models the voltage/frequency operating points of the ZYNQ
// processing system and the power scaling that goes with them, giving the
// reproduction the axis the paper's energy argument turns on: trading
// deadline slack for joules.
//
// The fixed-platform calibration (533 MHz PS, the board powers in
// internal/power) remains the anchor: at the nominal operating point every
// number this package produces is bit-for-bit identical to the fixed
// model. Away from the anchor, the PS-attributable share of the active
// board power scales with f·V² (dynamic CMOS power), while the quiescent
// board power and the PL wave-engine delta — a separate 100 MHz clock
// domain the PS operating point does not touch — stay fixed.
package dvfs

import (
	"fmt"
	"strings"

	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// OperatingPoint is one PS voltage/frequency pair, cpufreq style.
type OperatingPoint struct {
	// Name identifies the point ("533MHz").
	Name string `json:"name"`
	// Hz is the PS clock frequency at this point.
	Hz float64 `json:"hz"`
	// Volts is the modeled core voltage at this point.
	Volts float64 `json:"volts"`
}

// The operating-point table. The 533 MHz entry is the paper's measured
// configuration (the calibration anchor, at the nominal 1.0 V); the lower
// points follow the usual embedded DVFS ladder of scaled voltages, and
// 667 MHz is the overdrive point above nominal voltage.
var table = []OperatingPoint{
	{Name: "222MHz", Hz: 222e6, Volts: 0.825},
	{Name: "333MHz", Hz: 333e6, Volts: 0.875},
	{Name: "444MHz", Hz: 444e6, Volts: 0.925},
	{Name: "533MHz", Hz: zynq.PSHz, Volts: 1.000},
	{Name: "667MHz", Hz: 667e6, Volts: 1.100},
}

// nominalIndex locates the calibration anchor in the table.
const nominalIndex = 3

// List returns the operating points in ascending frequency order.
func List() []OperatingPoint {
	out := make([]OperatingPoint, len(table))
	copy(out, table)
	return out
}

// Nominal returns the calibration anchor: 533 MHz at 1.0 V, the paper's
// measured configuration.
func Nominal() OperatingPoint { return table[nominalIndex] }

// Min returns the slowest (lowest-voltage) operating point.
func Min() OperatingPoint { return table[0] }

// Max returns the fastest operating point.
func Max() OperatingPoint { return table[len(table)-1] }

// Lookup resolves an operating point by name, case-insensitively; the
// "MHz" suffix is optional ("222", "222mhz" and "222MHz" all match).
func Lookup(name string) (OperatingPoint, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.TrimSuffix(key, "mhz")
	for _, op := range table {
		if strings.TrimSuffix(strings.ToLower(op.Name), "mhz") == key {
			return op, true
		}
	}
	return OperatingPoint{}, false
}

// Names returns the point names in ascending frequency order.
func Names() []string {
	out := make([]string, len(table))
	for i, op := range table {
		out[i] = op.Name
	}
	return out
}

// Faster returns the operating point n steps above op in the table,
// clamping at the fastest point (a point not in the table maps to Max).
// Deadline-paced streams use it to escalate after a missed deadline.
func Faster(op OperatingPoint, n int) OperatingPoint {
	for i, p := range table {
		if p.Name == op.Name {
			i += n
			if i >= len(table) {
				i = len(table) - 1
			}
			if i < 0 {
				i = 0
			}
			return table[i]
		}
	}
	return Max()
}

// Clock returns the PS clock domain at this operating point. At the
// nominal point it is identical to zynq.PS().
func (op OperatingPoint) Clock() sim.Clock { return sim.NewClock("ps", op.Hz) }

// MHz reports the point frequency in MHz.
func (op OperatingPoint) MHz() float64 { return op.Hz / 1e6 }

func (op OperatingPoint) String() string {
	return fmt.Sprintf("%s@%.3fV", op.Name, op.Volts)
}

// Scale is the dynamic-power scaling factor of op relative to the nominal
// point: (f/f0)·(V/V0)². It is exactly 1 at the anchor.
func Scale(op OperatingPoint) float64 {
	n := Nominal()
	v := op.Volts / n.Volts
	return (op.Hz / n.Hz) * v * v
}

// ScalePS scales a calibrated active board power from the 533 MHz anchor
// to op: the dynamic share above the quiescent board power follows f·V²,
// the quiescent share does not move. At the nominal point the anchor is
// returned unchanged (bit-for-bit).
func ScalePS(anchor sim.Watts, op OperatingPoint) sim.Watts {
	s := Scale(op)
	if s == 1 {
		return anchor
	}
	return power.Idle + sim.Watts(float64(anchor-power.Idle)*s)
}

// ModePower returns the board power for a named engine mode at an
// operating point. The PS-attributable share of the ARM/NEON powers
// scales with the point; the FPGA mode adds the fixed PL wave-engine
// delta (its 100 MHz clock domain is not governed by the PS point).
// Unknown modes report the quiescent board power, like power.ModePower.
func ModePower(mode string, op OperatingPoint) sim.Watts {
	switch strings.ToLower(mode) {
	case "arm":
		return ScalePS(power.ARMActive, op)
	case "neon":
		return ScalePS(power.NEONActive, op)
	case "fpga":
		return ScalePS(power.ARMActive, op) + power.FPGADelta
	default:
		return power.Idle
	}
}

// Residency accumulates time and frame counts per operating point. The
// zero value is ready to use; it is not safe for concurrent use.
type Residency struct {
	time   map[string]sim.Time
	frames map[string]int64
}

// Add charges one frame's span at a point.
func (r *Residency) Add(op OperatingPoint, t sim.Time) {
	if r.time == nil {
		r.time = make(map[string]sim.Time)
		r.frames = make(map[string]int64)
	}
	r.time[op.Name] += t
	r.frames[op.Name]++
}

// Time returns a copy of the per-point accumulated time.
func (r *Residency) Time() map[string]sim.Time {
	out := make(map[string]sim.Time, len(r.time))
	for k, v := range r.time {
		out[k] = v
	}
	return out
}

// Frames returns a copy of the per-point frame counts.
func (r *Residency) Frames() map[string]int64 {
	out := make(map[string]int64, len(r.frames))
	for k, v := range r.frames {
		out[k] = v
	}
	return out
}

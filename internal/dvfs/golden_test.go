package dvfs_test

// The golden anchor test: at the 533 MHz operating point the DVFS-enabled
// constructors must reproduce the fixed-platform calibrated times and
// energies bit-for-bit, for every engine and for the full pipeline.

import (
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/power"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
)

func fuseStages(t *testing.T, e engine.Engine) pipeline.StageTimes {
	t.Helper()
	sc := camera.NewScene(64, 48, 7)
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < 3; i++ {
		_, st, err := fu.FuseFrames(sc.Visible(), sc.Thermal())
		if err != nil {
			t.Fatalf("fuse: %v", err)
		}
		acc.Add(st)
	}
	return acc
}

func TestNominalBitForBit(t *testing.T) {
	n := dvfs.Nominal()
	cases := []struct {
		name  string
		fixed func() engine.Engine
		atOp  func() engine.Engine
	}{
		{"arm", func() engine.Engine { return engine.NewARM() },
			func() engine.Engine { return engine.NewARMAt(n) }},
		{"neon", func() engine.Engine { return engine.NewNEON(false) },
			func() engine.Engine { return engine.NewNEONAt(false, n) }},
		{"fpga", func() engine.Engine { return engine.NewFPGA() },
			func() engine.Engine { return engine.NewFPGAAt(n) }},
		{"adaptive", func() engine.Engine { return sched.NewAdaptive(sched.Threshold{}) },
			func() engine.Engine { return sched.NewAdaptiveAt(sched.ThresholdForClock(n.Clock()), n) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fixed := fuseStages(t, c.fixed())
			atOp := fuseStages(t, c.atOp())
			if fixed != atOp {
				t.Errorf("533 MHz operating point diverges from fixed model:\nfixed %+v\nDVFS  %+v", fixed, atOp)
			}
		})
	}
}

func TestNominalEnginePowersBitForBit(t *testing.T) {
	n := dvfs.Nominal()
	if engine.NewARMAt(n).Power() != engine.NewARM().Power() {
		t.Errorf("ARM power differs at nominal")
	}
	if engine.NewNEONAt(false, n).Power() != engine.NewNEON(false).Power() {
		t.Errorf("NEON power differs at nominal")
	}
	if engine.NewFPGAAt(n).Power() != engine.NewFPGA().Power() {
		t.Errorf("FPGA power differs at nominal")
	}
}

func TestLowerPointSlowsAndHigherPointSpeeds(t *testing.T) {
	nominal := fuseStages(t, engine.NewNEONAt(false, dvfs.Nominal()))
	slow := fuseStages(t, engine.NewNEONAt(false, dvfs.Min()))
	fast := fuseStages(t, engine.NewNEONAt(false, dvfs.Max()))
	if !(slow.Total > nominal.Total && nominal.Total > fast.Total) {
		t.Errorf("frame time not monotone in frequency: min=%v nominal=%v max=%v",
			slow.Total, nominal.Total, fast.Total)
	}
	// NEON is pure PS work: time must scale as 1/f (within integer
	// picosecond rounding across the per-row conversions).
	ratio := float64(slow.Total) / float64(nominal.Total)
	want := dvfs.Nominal().Hz / dvfs.Min().Hz
	if ratio < want*0.999 || ratio > want*1.001 {
		t.Errorf("slowdown ratio %.5f, want ~%.5f (1/f scaling)", ratio, want)
	}
	// Over a common frame period (racing engines idle out the remainder
	// at the quiescent power), energy reduces to Idle·D plus a term that
	// scales with V² alone — so the low-voltage point wins strictly.
	period := slow.Total
	slowPeriod := slow.Energy // no slack: the slow point fills the period
	fastPeriod := fast.Energy + sim.EnergyOver(power.Idle, period-fast.Total)
	if slowPeriod >= fastPeriod {
		t.Errorf("low-V period energy %v not below race-to-idle %v", slowPeriod, fastPeriod)
	}
}

package dvfs

import (
	"testing"

	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

func TestTableShape(t *testing.T) {
	pts := List()
	if len(pts) != 5 {
		t.Fatalf("want 5 operating points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Hz <= pts[i-1].Hz {
			t.Errorf("points not in ascending frequency: %v before %v", pts[i-1], pts[i])
		}
		if pts[i].Volts <= pts[i-1].Volts {
			t.Errorf("voltage not monotone with frequency: %v before %v", pts[i-1], pts[i])
		}
	}
	if Min() != pts[0] || Max() != pts[len(pts)-1] {
		t.Errorf("Min/Max disagree with table order")
	}
}

func TestNominalIsCalibrationAnchor(t *testing.T) {
	n := Nominal()
	if n.Hz != zynq.PSHz {
		t.Errorf("nominal Hz = %g, want zynq.PSHz = %g", n.Hz, zynq.PSHz)
	}
	if n.Volts != 1.0 {
		t.Errorf("nominal Volts = %g, want 1.0", n.Volts)
	}
	if got := n.Clock(); got != zynq.PS() {
		t.Errorf("nominal Clock() = %+v, want zynq.PS() = %+v", got, zynq.PS())
	}
	if s := Scale(n); s != 1 {
		t.Errorf("Scale(nominal) = %g, want exactly 1", s)
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"533MHz", "533mhz", " 533MHZ ", "533"} {
		op, ok := Lookup(name)
		if !ok || op != Nominal() {
			t.Errorf("Lookup(%q) = %v, %v; want nominal", name, op, ok)
		}
	}
	if _, ok := Lookup("1000MHz"); ok {
		t.Errorf("Lookup of unknown point succeeded")
	}
}

func TestModePowerAnchorsExact(t *testing.T) {
	// At the nominal point the scaled powers must be bit-for-bit the
	// calibrated constants.
	n := Nominal()
	if got := ModePower("arm", n); got != power.ARMActive {
		t.Errorf("arm at nominal = %v, want %v", got, power.ARMActive)
	}
	if got := ModePower("neon", n); got != power.NEONActive {
		t.Errorf("neon at nominal = %v, want %v", got, power.NEONActive)
	}
	if got := ModePower("fpga", n); got != power.FPGAActive {
		t.Errorf("fpga at nominal = %v, want %v", got, power.FPGAActive)
	}
	if got := ModePower("mystery", n); got != power.Idle {
		t.Errorf("unknown mode at nominal = %v, want idle %v", got, power.Idle)
	}
}

func TestModePowerScaling(t *testing.T) {
	// Active power must be monotone in the operating point, always above
	// the quiescent power, and the FPGA delta must not scale.
	prev := sim.Watts(0)
	for _, op := range List() {
		arm := ModePower("arm", op)
		if arm <= power.Idle {
			t.Errorf("arm power at %v = %v, not above idle", op, arm)
		}
		if arm <= prev {
			t.Errorf("arm power not monotone at %v: %v <= %v", op, arm, prev)
		}
		prev = arm
		fpga := ModePower("fpga", op)
		if diff := float64(fpga - arm - power.FPGADelta); diff > 1e-15 || diff < -1e-15 {
			t.Errorf("fpga delta at %v = %v, want fixed %v", op, fpga-arm, power.FPGADelta)
		}
	}
}

func TestGovernors(t *testing.T) {
	// A synthetic predictor: frame time scales inversely with frequency
	// from 100ms at nominal.
	pred := func(op OperatingPoint) sim.Time {
		return sim.Time(float64(100*sim.Millisecond) * (Nominal().Hz / op.Hz))
	}
	if got := (RaceToIdle{}).Pick(pred, 200*sim.Millisecond); got != Max() {
		t.Errorf("race-to-idle picked %v, want max", got)
	}
	if got := (Fixed{Point: Min()}).Pick(pred, 200*sim.Millisecond); got != Min() {
		t.Errorf("fixed picked %v, want pinned point", got)
	}
	// 150ms deadline: 222MHz predicts 240ms (too slow), 333MHz predicts
	// 160ms (too slow), 444MHz predicts 120ms (fits).
	got := (DeadlinePace{}).Pick(pred, 150*sim.Millisecond)
	if got.Name != "444MHz" {
		t.Errorf("deadline-pace picked %v, want 444MHz", got)
	}
	// Generous deadline: lowest point.
	if got := (DeadlinePace{}).Pick(pred, sim.Second); got != Min() {
		t.Errorf("deadline-pace with slack picked %v, want min", got)
	}
	// Impossible deadline: fall back to fastest.
	if got := (DeadlinePace{}).Pick(pred, sim.Microsecond); got != Max() {
		t.Errorf("deadline-pace with impossible deadline picked %v, want max", got)
	}
	// No predictor or no deadline: fastest.
	if got := (DeadlinePace{}).Pick(nil, sim.Second); got != Max() {
		t.Errorf("deadline-pace without predictor picked %v, want max", got)
	}
	if got := (DeadlinePace{}).Pick(pred, 0); got != Max() {
		t.Errorf("deadline-pace without deadline picked %v, want max", got)
	}
}

func TestForPolicy(t *testing.T) {
	for _, name := range []string{"", "nominal", "NOMINAL"} {
		g, err := ForPolicy(name)
		if err != nil {
			t.Fatalf("ForPolicy(%q): %v", name, err)
		}
		if got := g.Pick(nil, 0); got != Nominal() {
			t.Errorf("ForPolicy(%q) picks %v, want nominal", name, got)
		}
	}
	g, err := ForPolicy("222MHz")
	if err != nil {
		t.Fatalf("ForPolicy(222MHz): %v", err)
	}
	if got := g.Pick(nil, 0); got != Min() {
		t.Errorf("pinned policy picks %v, want 222MHz", got)
	}
	if g, err = ForPolicy("race-to-idle"); err != nil || g.Name() != PolicyRaceToIdle {
		t.Errorf("ForPolicy(race-to-idle) = %v, %v", g, err)
	}
	if g, err = ForPolicy("deadline-pace"); err != nil || g.Name() != PolicyDeadlinePace {
		t.Errorf("ForPolicy(deadline-pace) = %v, %v", g, err)
	}
	if _, err = ForPolicy("warp-speed"); err == nil {
		t.Errorf("ForPolicy accepted an unknown policy")
	}
}

func TestResidency(t *testing.T) {
	var r Residency
	r.Add(Max(), 10*sim.Millisecond)
	r.Add(Min(), 5*sim.Millisecond)
	r.Add(Min(), 5*sim.Millisecond)
	if got := r.Time()[Min().Name]; got != 10*sim.Millisecond {
		t.Errorf("min residency = %v, want 10ms", got)
	}
	if got := r.Frames()[Min().Name]; got != 2 {
		t.Errorf("min frames = %d, want 2", got)
	}
	if got := r.Frames()[Max().Name]; got != 1 {
		t.Errorf("max frames = %d, want 1", got)
	}
}

package dvfs

import (
	"fmt"
	"strings"

	"zynqfusion/internal/sim"
)

// Predictor estimates the modeled frame time at an operating point. Farm
// streams calibrate one by probing the cycle-based cost model at every
// point before the first frame.
type Predictor func(op OperatingPoint) sim.Time

// Governor picks the PS operating point for the next frame.
type Governor interface {
	// Name identifies the governor in telemetry and reports.
	Name() string
	// Pick returns the operating point for a frame due within deadline
	// (0 means no deadline), given a predictor of frame time per point.
	// pred may be nil when the caller has no prediction.
	Pick(pred Predictor, deadline sim.Time) OperatingPoint
}

// Governor policy names accepted by ForPolicy.
const (
	// PolicyNominal pins the PS at the calibrated 533 MHz point — the
	// fixed-platform behavior every pre-DVFS result was measured at.
	PolicyNominal = "nominal"
	// PolicyRaceToIdle runs every frame at the fastest point and spends
	// the remaining deadline slack at the quiescent board power.
	PolicyRaceToIdle = "race-to-idle"
	// PolicyDeadlinePace runs each frame at the lowest point whose
	// predicted frame time still meets the deadline.
	PolicyDeadlinePace = "deadline-pace"
)

// Fixed pins one operating point regardless of deadline.
type Fixed struct{ Point OperatingPoint }

// Name implements Governor.
func (f Fixed) Name() string { return "fixed-" + f.Point.Name }

// Pick implements Governor.
func (f Fixed) Pick(Predictor, sim.Time) OperatingPoint { return f.Point }

// RaceToIdle always picks the fastest point: finish the frame as early as
// possible, then idle until the deadline. The classic throughput-first
// strategy deadline pacing is measured against.
type RaceToIdle struct{}

// Name implements Governor.
func (RaceToIdle) Name() string { return PolicyRaceToIdle }

// Pick implements Governor.
func (RaceToIdle) Pick(Predictor, sim.Time) OperatingPoint { return Max() }

// DeadlinePace picks the lowest operating point whose predicted frame
// time meets the deadline: the frame stretches into its slack at a lower
// voltage, and because energy over the frame period scales with V² the
// paced frame costs strictly fewer joules than racing and idling.
type DeadlinePace struct{}

// Name implements Governor.
func (DeadlinePace) Name() string { return PolicyDeadlinePace }

// Pick implements Governor. Without a deadline or a predictor, or when no
// point meets the deadline, it falls back to the fastest point.
func (DeadlinePace) Pick(pred Predictor, deadline sim.Time) OperatingPoint {
	if deadline <= 0 || pred == nil {
		return Max()
	}
	for _, op := range table {
		if pred(op) <= deadline {
			return op
		}
	}
	return Max()
}

// ForPolicy resolves a governor by policy name. The empty name and
// "nominal" pin the calibrated 533 MHz point (the pre-DVFS behavior); an
// operating-point name ("222MHz") pins that point; "race-to-idle" and
// "deadline-pace" select the dynamic governors.
func ForPolicy(name string) (Governor, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", PolicyNominal:
		return Fixed{Point: Nominal()}, nil
	case PolicyRaceToIdle:
		return RaceToIdle{}, nil
	case PolicyDeadlinePace:
		return DeadlinePace{}, nil
	}
	if op, ok := Lookup(name); ok {
		return Fixed{Point: op}, nil
	}
	return nil, fmt.Errorf("dvfs: unknown policy %q (want %s, %s, %s or an operating point %v)",
		name, PolicyNominal, PolicyRaceToIdle, PolicyDeadlinePace, Names())
}

// Package split models cooperative CPU+FPGA execution of one wavelet
// level: instead of routing an entire level to exactly one engine (the
// paper's either/or choice, which leaves the loser idle and burning static
// power), a Partition assigns a fraction of the level's row/column
// transforms to the FPGA wave engine and the remainder to the NEON unit,
// and both lanes run concurrently — one Cortex-A9 core drives the wave
// engine while the other runs the NEON rows. Level time becomes
// max(cpuTime, fpgaTime) plus a calibrated merge/sync overhead, the model
// of "Parallelizing Workload Execution in Embedded and High-Performance
// Heterogeneous Systems" (Nunez-Yanez et al.) applied to this system.
//
// The package provides the partition type, per-row lane-time estimates
// derived from the calibrated cost model, and three split policies:
//
//   - Oracle: the cost-model optimal split per (pairs, direction,
//     operating point) — lane times balance at the estimated rates.
//   - AdaptiveSplit: online hill climbing on the observed per-engine pass
//     times, seeded by the same cost-model probes.
//   - EnergySplit: minimizes modeled J/level rather than time; at low PS
//     clocks NEON rows stretch while the wave engine's fixed 100 MHz PL
//     domain does not, so the optimal FPGA share grows.
//
// The scheduling layer (internal/sched) drives partitions row by row;
// split itself has no dependency on it.
package split

import (
	"fmt"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/power"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// Partition is the work split of one row class: the fraction of the
// class's rows assigned to the FPGA lane. The remainder (1 - FPGA) runs on
// the NEON lane. The zero value is the NEON-only degenerate split.
type Partition struct {
	// FPGA is the fraction of rows routed to the wave engine, in [0, 1].
	FPGA float64
}

// Clamp returns the partition with FPGA forced into [0, 1].
func (p Partition) Clamp() Partition {
	if p.FPGA < 0 {
		p.FPGA = 0
	}
	if p.FPGA > 1 {
		p.FPGA = 1
	}
	return p
}

// Degenerate reports whether the partition uses only one lane — the
// either/or routing of the fixed system. Degenerate partitions reproduce
// the exclusive engines bit-for-bit: no merge overhead, no overlap.
func (p Partition) Degenerate() bool { return p.FPGA <= 0 || p.FPGA >= 1 }

func (p Partition) String() string { return fmt.Sprintf("fpga=%.0f%%", p.FPGA*100) }

// Policy decides the partition for a row class.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Split returns the partition for rows of the given output pair count
	// and direction.
	Split(pairs int, inverse bool) Partition
}

// PassObservation is one completed pass (a run of same-class rows) as the
// executing engine measured it, the feedback an online split policy learns
// from.
type PassObservation struct {
	// NEONRows and FPGARows count the rows each lane executed.
	NEONRows, FPGARows int
	// NEONTime and FPGATime are the lanes' accumulated busy times.
	NEONTime, FPGATime sim.Time
}

// Feedback is implemented by policies that learn from measured passes.
type Feedback interface {
	// ObservePass reports one completed pass of a row class.
	ObservePass(pairs int, inverse bool, obs PassObservation)
}

// Fixed always returns the same partition — the exclusive engines are its
// 0.0 and 1.0 endpoints, and the split-frontier experiment sweeps it.
type Fixed struct{ Frac float64 }

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%.2f", f.Frac) }

// Split implements Policy.
func (f Fixed) Split(int, bool) Partition { return Partition{FPGA: f.Frac}.Clamp() }

// RowTimes estimates the per-row lane times of a row class at a PS
// operating point from the calibrated cost model: the NEON rate plus row
// overhead on the CPU lane; driver round trip, user copies and the
// PL compute time on the FPGA lane. The NEON and host-side costs scale
// with the PS clock; the PL per-pair time lives in its fixed 100 MHz
// domain (expressed in PS-cycle equivalents at the nominal clock, the
// same calibration sched.ThresholdForClock uses).
func RowTimes(pairs int, inverse bool, op dvfs.OperatingPoint) (neon, fpga sim.Time) {
	ps := op.Clock()
	neonPair, plPair := engine.NEONFwdPairCycles, engine.PLFwdPairNominalCycles
	syscall := float64(engine.SyscallCycles)
	if inverse {
		neonPair, plPair = engine.NEONInvPairCycles, engine.PLInvPairNominalCycles
		syscall += engine.InverseExtraSyscallCycles
	}
	neon = ps.CyclesF(engine.NEONRowOverheadCycles + neonPair*float64(pairs))
	// Host side: round trip plus copying the padded input row in and the
	// subband pair out of the mmap'd kernel buffer.
	words := float64(2*pairs+signal.TapCount) + float64(2*pairs)
	host := ps.CyclesF(syscall + engine.UserCopyCyclesPerWord*words)
	pl := zynq.PS().CyclesF(plPair * float64(pairs))
	return neon, host + pl
}

// balanced returns the lane-balancing fraction t_neon/(t_neon + t_fpga):
// with n rows split at f, the concurrent pass time max(f·n·t_f,
// (1-f)·n·t_n) is minimized where the lanes finish together.
func balanced(neon, fpga sim.Time) float64 {
	if neon <= 0 && fpga <= 0 {
		return 0
	}
	return float64(neon) / float64(neon+fpga)
}

// DefaultMinPairs is the row width below which the split policies keep the
// whole pass on NEON: the deepest levels run only a handful of rows, so
// the per-pass merge/sync overhead outweighs the concurrency gain.
const DefaultMinPairs = 6

// Oracle returns the cost-model optimal split per row class at one
// operating point: lanes balance at the estimated per-row rates, the
// cooperative analogue of sched.ThresholdForClock.
type Oracle struct {
	// Op is the PS operating point the estimates are computed at.
	Op dvfs.OperatingPoint
	// MinPairs keeps rows narrower than this NEON-only (0 selects
	// DefaultMinPairs).
	MinPairs int
}

// NewOracle returns the oracle split policy for an operating point.
func NewOracle(op dvfs.OperatingPoint) *Oracle { return &Oracle{Op: op} }

// Name implements Policy.
func (o *Oracle) Name() string { return "split-oracle-" + o.Op.Name }

// Split implements Policy.
func (o *Oracle) Split(pairs int, inverse bool) Partition {
	min := o.MinPairs
	if min == 0 {
		min = DefaultMinPairs
	}
	if pairs < min {
		return Partition{}
	}
	neon, fpga := RowTimes(pairs, inverse, o.Op)
	return Partition{FPGA: balanced(neon, fpga)}.Clamp()
}

// EnergySplit picks the partition minimizing modeled energy per pass
// rather than time. Per row-equivalent, a pass at fraction f costs
//
//	P_neon·(1-f)·t_n + P_fpga·f·t_f − P_idle·min((1-f)·t_n, f·t_f)
//
// — each lane's busy time at its mode power, minus the quiescent board
// power over the overlapped span the concurrency removes from the wall
// clock. The minimum is found on a deterministic 1% grid. Because the
// idle rebate grows with overlap, the energy optimum sits near the
// balanced point but shifts with the operating point: at low PS clocks
// t_n stretches while t_f's PL share does not, growing the FPGA share.
type EnergySplit struct {
	// Op is the PS operating point the estimates are computed at.
	Op dvfs.OperatingPoint
	// MinPairs keeps rows narrower than this NEON-only (0 selects
	// DefaultMinPairs).
	MinPairs int
}

// NewEnergySplit returns the energy-minimizing split policy for an
// operating point.
func NewEnergySplit(op dvfs.OperatingPoint) *EnergySplit { return &EnergySplit{Op: op} }

// Name implements Policy.
func (e *EnergySplit) Name() string { return "split-energy-" + e.Op.Name }

// Split implements Policy.
func (e *EnergySplit) Split(pairs int, inverse bool) Partition {
	min := e.MinPairs
	if min == 0 {
		min = DefaultMinPairs
	}
	if pairs < min {
		return Partition{}
	}
	tn, tf := RowTimes(pairs, inverse, e.Op)
	pn := float64(dvfs.ModePower("neon", e.Op))
	pf := float64(dvfs.ModePower("fpga", e.Op))
	pi := float64(power.Idle)
	best, bestE := 0.0, 0.0
	for i := 0; i <= 100; i++ {
		f := float64(i) / 100
		cpuT := (1 - f) * float64(tn)
		fpgaT := f * float64(tf)
		overlap := cpuT
		if fpgaT < overlap {
			overlap = fpgaT
		}
		en := pn*cpuT + pf*fpgaT - pi*overlap
		if i == 0 || en < bestE {
			best, bestE = f, en
		}
	}
	return Partition{FPGA: best}.Clamp()
}

// AdaptiveSplit hill-climbs the FPGA share per row class online: each
// completed pass reports the two lanes' measured times, and the share
// steps toward the lane that finished first, halving the step whenever
// the direction flips. The starting share is seeded from the cost-model
// probe (RowTimes), so the first frames already run near the oracle point
// and the climber only has to track what the model missed.
type AdaptiveSplit struct {
	// Op seeds the initial shares (the probe operating point).
	Op dvfs.OperatingPoint
	// Step is the initial climb step (0 selects 0.10).
	Step float64
	// MinPairs keeps rows narrower than this NEON-only (0 selects
	// DefaultMinPairs).
	MinPairs int

	state map[classKey]*climbState
}

type classKey struct {
	pairs   int
	inverse bool
}

type climbState struct {
	frac float64
	step float64
	last int // -1 fpga lagged, +1 neon lagged, 0 unset
}

// NewAdaptiveSplit returns the online hill-climbing split policy seeded at
// an operating point.
func NewAdaptiveSplit(op dvfs.OperatingPoint) *AdaptiveSplit { return &AdaptiveSplit{Op: op} }

// Name implements Policy.
func (a *AdaptiveSplit) Name() string { return "split-adaptive-" + a.Op.Name }

func (a *AdaptiveSplit) stateFor(pairs int, inverse bool) *climbState {
	if a.state == nil {
		a.state = make(map[classKey]*climbState)
	}
	k := classKey{pairs: pairs, inverse: inverse}
	st, ok := a.state[k]
	if !ok {
		neon, fpga := RowTimes(pairs, inverse, a.Op)
		step := a.Step
		if step == 0 {
			step = 0.10
		}
		st = &climbState{frac: balanced(neon, fpga), step: step}
		a.state[k] = st
	}
	return st
}

// Split implements Policy.
func (a *AdaptiveSplit) Split(pairs int, inverse bool) Partition {
	min := a.MinPairs
	if min == 0 {
		min = DefaultMinPairs
	}
	if pairs < min {
		return Partition{}
	}
	return Partition{FPGA: a.stateFor(pairs, inverse).frac}.Clamp()
}

// ObservePass implements Feedback: one hill-climb step on the measured
// lane imbalance.
func (a *AdaptiveSplit) ObservePass(pairs int, inverse bool, obs PassObservation) {
	if obs.NEONRows == 0 || obs.FPGARows == 0 {
		return // degenerate pass: nothing to balance
	}
	st := a.stateFor(pairs, inverse)
	dir := +1 // NEON lane lagged: grow the FPGA share
	if obs.FPGATime > obs.NEONTime {
		dir = -1 // FPGA lane lagged: shrink it
	}
	if st.last != 0 && st.last != dir {
		st.step /= 2 // overshot the balance point: refine
	}
	st.last = dir
	st.frac += float64(dir) * st.step
	if st.frac < 0 {
		st.frac = 0
	}
	if st.frac > 1 {
		st.frac = 1
	}
}

package split

import (
	"testing"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/sim"
)

func op(name string) dvfs.OperatingPoint {
	p, ok := dvfs.Lookup(name)
	if !ok {
		panic("no operating point " + name)
	}
	return p
}

func TestPartitionClampAndDegenerate(t *testing.T) {
	cases := []struct {
		in         float64
		want       float64
		degenerate bool
	}{
		{-0.5, 0, true},
		{0, 0, true},
		{0.4, 0.4, false},
		{1, 1, true},
		{1.7, 1, true},
	}
	for _, c := range cases {
		p := Partition{FPGA: c.in}.Clamp()
		if p.FPGA != c.want {
			t.Errorf("Clamp(%g) = %g, want %g", c.in, p.FPGA, c.want)
		}
		if p.Degenerate() != c.degenerate {
			t.Errorf("Degenerate(%g) = %v, want %v", c.in, p.Degenerate(), c.degenerate)
		}
	}
}

func TestFixedSweepsEndpoints(t *testing.T) {
	if f := (Fixed{Frac: 0}).Split(44, false); !f.Degenerate() || f.FPGA != 0 {
		t.Errorf("Fixed 0 = %+v", f)
	}
	if f := (Fixed{Frac: 1}).Split(44, false); !f.Degenerate() || f.FPGA != 1 {
		t.Errorf("Fixed 1 = %+v", f)
	}
	if f := (Fixed{Frac: 2}).Split(44, false); f.FPGA != 1 {
		t.Errorf("Fixed clamps: %+v", f)
	}
}

func TestRowTimesShapes(t *testing.T) {
	// Wide rows: NEON per-row cost dominates the FPGA's; the balanced
	// fraction leans to the FPGA lane.
	n, f := RowTimes(44, false, dvfs.Nominal())
	if n <= 0 || f <= 0 {
		t.Fatalf("RowTimes(44) = %v, %v", n, f)
	}
	if n <= f {
		t.Errorf("wide rows: NEON (%v) should cost more than FPGA (%v)", n, f)
	}
	// Narrow rows: the driver round trip dominates and NEON is cheaper.
	n2, f2 := RowTimes(6, false, dvfs.Nominal())
	if n2 >= f2 {
		t.Errorf("narrow rows: NEON (%v) should beat FPGA (%v)", n2, f2)
	}
	// The inverse path carries the extra driver cost.
	_, fInv := RowTimes(44, true, dvfs.Nominal())
	if fInv <= f {
		t.Errorf("inverse FPGA row (%v) should cost more than forward (%v)", fInv, f)
	}
}

func TestOracleBalancesLanes(t *testing.T) {
	o := NewOracle(dvfs.Nominal())
	p := o.Split(44, false)
	if p.Degenerate() {
		t.Fatalf("oracle split at 44 pairs should be cooperative, got %+v", p)
	}
	tn, tf := RowTimes(44, false, dvfs.Nominal())
	want := float64(tn) / float64(tn+tf)
	if diff := p.FPGA - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("oracle = %g, want balanced %g", p.FPGA, want)
	}
	// Below the pair floor the pass stays on NEON.
	if p := o.Split(4, false); p.FPGA != 0 {
		t.Errorf("oracle below MinPairs = %+v, want NEON-only", p)
	}
}

func TestOracleFPGAShareGrowsAsPSClockDrops(t *testing.T) {
	// At a low PS clock NEON rows stretch while the PL compute time is
	// fixed, so the oracle hands the wave engine a larger share.
	slow := NewOracle(op("222MHz")).Split(44, false).FPGA
	fast := NewOracle(op("667MHz")).Split(44, false).FPGA
	if slow <= fast {
		t.Errorf("FPGA share at 222MHz (%g) should exceed 667MHz (%g)", slow, fast)
	}
}

func TestEnergySplitTracksOperatingPoint(t *testing.T) {
	slow := NewEnergySplit(op("222MHz")).Split(44, false).FPGA
	fast := NewEnergySplit(op("667MHz")).Split(44, false).FPGA
	if slow <= fast {
		t.Errorf("energy-optimal FPGA share at 222MHz (%g) should exceed 667MHz (%g)", slow, fast)
	}
	// The grid search is deterministic.
	a := NewEnergySplit(dvfs.Nominal()).Split(44, false)
	b := NewEnergySplit(dvfs.Nominal()).Split(44, false)
	if a != b {
		t.Errorf("energy split not deterministic: %+v vs %+v", a, b)
	}
}

func TestEnergySplitCooperativeBeatsExclusiveModel(t *testing.T) {
	// Under the package's own energy model the chosen split must cost no
	// more than either exclusive lane.
	tn, tf := RowTimes(44, false, dvfs.Nominal())
	e := NewEnergySplit(dvfs.Nominal())
	f := e.Split(44, false).FPGA
	cost := func(f float64) float64 {
		pn := 0.5333
		pf := 0.5525
		pi := 0.41
		cpuT := (1 - f) * float64(tn)
		fpgaT := f * float64(tf)
		overlap := cpuT
		if fpgaT < overlap {
			overlap = fpgaT
		}
		return pn*cpuT + pf*fpgaT - pi*overlap
	}
	if cost(f) > cost(0) || cost(f) > cost(1) {
		t.Errorf("energy split %g costs %g, exclusive lanes cost %g / %g",
			f, cost(f), cost(0), cost(1))
	}
}

func TestAdaptiveSplitSeedsFromProbe(t *testing.T) {
	a := NewAdaptiveSplit(dvfs.Nominal())
	got := a.Split(44, false).FPGA
	want := NewOracle(dvfs.Nominal()).Split(44, false).FPGA
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("seed = %g, want oracle %g", got, want)
	}
}

func TestAdaptiveSplitClimbsTowardLaggingLane(t *testing.T) {
	a := NewAdaptiveSplit(dvfs.Nominal())
	start := a.Split(44, false).FPGA
	// FPGA lane lagged: share must shrink.
	a.ObservePass(44, false, PassObservation{
		NEONRows: 10, FPGARows: 30,
		NEONTime: 100 * sim.Microsecond, FPGATime: 400 * sim.Microsecond,
	})
	down := a.Split(44, false).FPGA
	if down >= start {
		t.Fatalf("share should drop after FPGA lag: %g -> %g", start, down)
	}
	// NEON lane lagged: share climbs back, with a halved step after the
	// direction flip.
	a.ObservePass(44, false, PassObservation{
		NEONRows: 30, FPGARows: 10,
		NEONTime: 400 * sim.Microsecond, FPGATime: 100 * sim.Microsecond,
	})
	up := a.Split(44, false).FPGA
	if up <= down {
		t.Fatalf("share should rise after NEON lag: %g -> %g", down, up)
	}
	if grew, shrank := up-down, start-down; grew >= shrank {
		t.Errorf("step should halve on direction flip: +%g after -%g", grew, shrank)
	}
	// Degenerate passes carry no balance information.
	before := a.Split(44, false).FPGA
	a.ObservePass(44, false, PassObservation{NEONRows: 40, NEONTime: sim.Millisecond})
	if after := a.Split(44, false).FPGA; after != before {
		t.Errorf("degenerate pass moved the share: %g -> %g", before, after)
	}
}

func TestAdaptiveSplitStaysClamped(t *testing.T) {
	a := &AdaptiveSplit{Op: dvfs.Nominal(), Step: 0.5}
	for i := 0; i < 10; i++ {
		a.ObservePass(44, false, PassObservation{
			NEONRows: 10, FPGARows: 30,
			NEONTime: 1 * sim.Microsecond, FPGATime: 500 * sim.Microsecond,
		})
	}
	if f := a.Split(44, false).FPGA; f < 0 || f > 1 {
		t.Errorf("share escaped [0,1]: %g", f)
	}
}

// Package wavelet implements the transforms at the heart of the paper's
// fusion algorithm: two-channel perfect-reconstruction filter banks, the
// separable 2-D discrete wavelet transform (DWT), and the Dual-Tree Complex
// Wavelet Transform (DT-CWT) with its six oriented complex subbands.
//
// All inner filtering is expressed through the signal.Kernel contract so
// that the ARM, NEON and FPGA engines each execute the identical dataflow
// the paper accelerates.
package wavelet

import (
	"fmt"
	"math"

	"zynqfusion/internal/signal"
)

// analysisPlace is the kernel-array index holding filter position n = 0 for
// analysis filters (AL[analysisPlace-n] = h[n]).
const analysisPlace = 5

// synthesisPlace is the kernel-array index holding filter position n = 0
// for synthesis filters (SL[synthesisPlace+n] = g[n]). It must be even so
// the polyphase split of the synthesis kernel preserves filter phase.
const synthesisPlace = 6

// Bank is a two-channel perfect-reconstruction filter bank in engine-tap
// form. Banks are immutable after construction.
type Bank struct {
	Name string
	// Analysis lowpass/highpass and synthesis lowpass/highpass taps in
	// the 12-tap datapath layout.
	AL, AH, SL, SH signal.Taps
	// delay is the output rotation that makes the periodic
	// analysis/synthesis round trip the exact identity. It is solved and
	// verified at construction.
	delay int
}

// Delay reports the calibrated round-trip rotation.
func (b *Bank) Delay() int { return b.delay }

// filter is a finite filter h[n] with explicit support: h[n] = coeffs[n-a]
// for n in [a, a+len(coeffs)).
type filter struct {
	coeffs []float64
	a      int // support start (position of coeffs[0])
}

func (f filter) at(n int) float64 {
	i := n - f.a
	if i < 0 || i >= len(f.coeffs) {
		return 0
	}
	return f.coeffs[i]
}

// centered returns a filter whose support is centered on n = 0 (odd-length
// filters get a whole-sample center).
func centered(coeffs []float64) filter {
	return filter{coeffs: coeffs, a: -(len(coeffs) - 1) / 2}
}

// reversedFilter returns h[-n].
func reversedFilter(f filter) filter {
	r := make([]float64, len(f.coeffs))
	for i, v := range f.coeffs {
		r[len(f.coeffs)-1-i] = v
	}
	return filter{coeffs: r, a: -(f.a + len(f.coeffs) - 1)}
}

// delayedFilter returns h[n-d].
func delayedFilter(f filter, d int) filter {
	return filter{coeffs: f.coeffs, a: f.a + d}
}

// altShift builds s * (-1)^n * src[n-d] over the shifted support, the
// classic alias-cancelling highpass construction.
func altShift(src filter, d int, s float64) filter {
	out := filter{coeffs: make([]float64, len(src.coeffs)), a: src.a + d}
	for i := range out.coeffs {
		n := out.a + i
		sign := 1.0
		if n&1 != 0 {
			sign = -1
		}
		out.coeffs[i] = s * sign * src.at(n-d)
	}
	return out
}

func (f filter) analysisTaps() signal.Taps {
	var t signal.Taps
	for i, v := range f.coeffs {
		n := f.a + i
		j := analysisPlace - n
		if j < 0 || j >= signal.TapCount {
			panic(fmt.Sprintf("wavelet: analysis filter support [%d,%d] exceeds the 12-tap datapath", f.a, f.a+len(f.coeffs)-1))
		}
		t[j] = float32(v)
	}
	return t
}

func (f filter) synthesisTaps() signal.Taps {
	var t signal.Taps
	for i, v := range f.coeffs {
		n := f.a + i
		j := synthesisPlace + n
		if j < 0 || j >= signal.TapCount {
			panic(fmt.Sprintf("wavelet: synthesis filter support [%d,%d] exceeds the 12-tap datapath", f.a, f.a+len(f.coeffs)-1))
		}
		t[j] = float32(v)
	}
	return t
}

// newBank assembles a bank from a centered biorthogonal lowpass pair
// (h0, g0) satisfying the halfband condition on P = H0*G0. The highpass
// filters use the standard alias-cancelling choice
//
//	H1(z) = z^-1 G0(-z),  G1(z) = z H0(-z),
//
// and the construction is verified (perfect reconstruction on a pseudo-
// random vector) before the bank is returned; failure panics, because the
// built-in banks are package constants and a failure is a programming
// error.
func newBank(name string, h0, g0 filter) *Bank {
	// Two mirror-image alias-cancelling conventions exist:
	//   H1(z) = z^-1 G0(-z), G1(z) = z^+1 H0(-z)   (shift = +1)
	//   H1(z) = z^+1 G0(-z), G1(z) = z^-1 H0(-z)   (shift = -1)
	// Both give perfect reconstruction; they differ only in where the
	// highpass supports land, so pick whichever fits the 12-tap datapath.
	for _, shift := range []int{1, -1} {
		h1 := altShift(g0, shift, 1) // (-1)^n g0[n-shift]; sign fixed below
		g1 := altShift(h0, -shift, 1)
		negate(&h1) // h1[n] = (-1)^(n-shift) g0[n-shift]
		negate(&g1) // g1[n] = (-1)^(n+shift) h0[n+shift]
		if !fitsAnalysis(h0) || !fitsAnalysis(h1) || !fitsSynthesis(g0) || !fitsSynthesis(g1) {
			continue
		}
		b := &Bank{
			Name: name,
			AL:   h0.analysisTaps(),
			AH:   h1.analysisTaps(),
			SL:   g0.synthesisTaps(),
			SH:   g1.synthesisTaps(),
		}
		if err := b.solveDelay(); err != nil {
			panic(fmt.Sprintf("wavelet: bank %q is not perfect-reconstruction: %v", name, err))
		}
		return b
	}
	panic(fmt.Sprintf("wavelet: bank %q does not fit the 12-tap datapath in either convention", name))
}

func fitsAnalysis(f filter) bool {
	lo, hi := analysisPlace-(signal.TapCount-1), analysisPlace
	return f.a >= lo && f.a+len(f.coeffs)-1 <= hi
}

func fitsSynthesis(f filter) bool {
	lo, hi := -synthesisPlace, signal.TapCount-1-synthesisPlace
	return f.a >= lo && f.a+len(f.coeffs)-1 <= hi
}

func negate(f *filter) {
	for i := range f.coeffs {
		f.coeffs[i] = -f.coeffs[i]
	}
}

// Delayed returns a bank whose analysis filters are delayed by one sample
// (tree-B level-1 filters in the dual tree). Perfect reconstruction is
// re-verified and the round-trip delay re-solved.
func (b *Bank) Delayed(name string) *Bank {
	nb := &Bank{
		Name: name,
		AL:   b.AL.Shifted(-1),
		AH:   b.AH.Shifted(-1),
		SL:   b.SL,
		SH:   b.SH,
	}
	if err := nb.solveDelay(); err != nil {
		panic(fmt.Sprintf("wavelet: delayed bank %q lost perfect reconstruction: %v", name, err))
	}
	return nb
}

// solveDelay determines the integer rotation that turns the periodic
// analysis/synthesis round trip into the identity, and verifies exactness.
func (b *Bank) solveDelay() error {
	const n = 48
	x := make([]float32, n)
	// Deterministic pseudo-random probe (xorshift); a probe with no
	// structure rules out accidental rotation matches.
	state := uint32(0x9e3779b9)
	for i := range x {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		x[i] = float32(state%2048)/1024 - 1
	}
	y := roundTrip(b, x)
	var peak float32 = 1e-9
	for _, v := range x {
		if a := float32(math.Abs(float64(v))); a > peak {
			peak = a
		}
	}
	for d := 0; d < n; d++ {
		ok := true
		for i := 0; i < n; i++ {
			if diff := y[(i+d)%n] - x[i]; diff > 1e-3*peak || diff < -1e-3*peak {
				ok = false
				break
			}
		}
		if ok {
			b.delay = d
			return nil
		}
	}
	return fmt.Errorf("no rotation reconstructs the probe signal")
}

// roundTrip runs analysis+synthesis with the reference kernel, without the
// delay compensation.
func roundTrip(b *Bank, x []float32) []float32 {
	n := len(x)
	m := n / 2
	px := signal.PadPeriodic(x, nil)
	lo := make([]float32, m)
	hi := make([]float32, m)
	signal.AnalyzeRef(&b.AL, &b.AH, px, lo, hi)
	plo := signal.PadPeriodicPairs(lo, nil)
	phi := signal.PadPeriodicPairs(hi, nil)
	y := make([]float32, n)
	signal.SynthesizeRef(&b.SL, &b.SH, plo, phi, y)
	return y
}

// Built-in filter banks.
var (
	// LeGall53 is the 5/3 integer biorthogonal bank (JPEG 2000 lossless
	// filters). Its rational coefficients make it the exactness work-horse
	// of the test suite.
	LeGall53 = newBank("legall-5/3",
		centered([]float64{-1.0 / 8, 2.0 / 8, 6.0 / 8, 2.0 / 8, -1.0 / 8}),
		centered([]float64{1.0 / 2, 1, 1.0 / 2}),
	)

	// CDF97 is the Cohen-Daubechies-Feauveau 9/7 bank (JPEG 2000 lossy
	// filters), the stand-in for the paper's near-symmetric level-1
	// biorthogonal DT-CWT filters.
	CDF97 = newBank("cdf-9/7",
		centered([]float64{
			0.026748757410810, -0.016864118442875, -0.078223266528988,
			0.266864118442875, 0.602949018236360, 0.266864118442875,
			-0.078223266528988, -0.016864118442875, 0.026748757410810,
		}),
		centered([]float64{
			-0.091271763114250, -0.057543526228500, 0.591271763114250,
			1.115087052457000, 0.591271763114250, -0.057543526228500,
			-0.091271763114250,
		}),
	)

	// Haar is the 2-tap orthogonal bank: the cheapest PR wavelet, kept as
	// a baseline and a fast smoke-test bank.
	Haar = newOrthogonalBank("haar", []float64{invSqrt2F, invSqrt2F})

	// Daub4 is the orthogonal Daubechies length-4 bank used for levels >= 2
	// of the dual tree (tree A).
	Daub4 = newOrthogonalBank("daub-4", daub4Coeffs)

	// Daub6 is the orthogonal Daubechies length-6 bank, an alternative
	// deep-level filter with better frequency separation than Daub4.
	Daub6 = newOrthogonalBank("daub-6", daub6Coeffs)

	// Daub6Reversed is the time-reversed Daub6 bank for tree B.
	Daub6Reversed = newReversedOrthogonalBank("daub-6-rev", daub6Coeffs)

	// Daub4Reversed is the time-reversed Daub4 bank used for tree B at
	// levels >= 2, giving the q-shift-style fractional delay offset between
	// the trees.
	Daub4Reversed = newReversedOrthogonalBank("daub-4-rev", daub4Coeffs)
)

var daub4Coeffs = []float64{
	0.482962913144534, 0.836516303737808, 0.224143868042013, -0.129409522551260,
}

var daub6Coeffs = []float64{
	0.332670552950083, 0.806891509311092, 0.459877502118491,
	-0.135011020010255, -0.085441273882027, 0.035226291885710,
}

// invSqrt2F is 1/sqrt(2), the Haar coefficient.
const invSqrt2F = 0.7071067811865476

// newOrthogonalBank builds a PR bank from an orthonormal lowpass filter
// (sum h^2 = 1, double-shift orthogonality): g0 is the time reverse of h0.
func newOrthogonalBank(name string, h0 []float64) *Bank {
	h := filter{coeffs: h0, a: 0}
	return newBank(name, h, reversedFilter(h))
}

// newReversedOrthogonalBank builds the bank of the time-reversed lowpass.
func newReversedOrthogonalBank(name string, h0 []float64) *Bank {
	h := filter{coeffs: h0, a: 0}
	hr := reversedFilter(h)
	return newBank(name, hr, reversedFilter(hr))
}

package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zynqfusion/internal/signal"
)

func allBanks() []*Bank {
	return []*Bank{LeGall53, CDF97, Haar, Daub4, Daub4Reversed, Daub6,
		Daub6Reversed, cdf97Delayed, Daub4.Delayed("daub-4-delayed-test")}
}

// roundTripAligned runs analysis + synthesis with delay compensation.
func roundTripAligned(t *testing.T, b *Bank, x []float32) []float32 {
	t.Helper()
	xf := NewXfm(signal.RefKernel{})
	lo, hi := xf.Analyze1D(b, x, nil, nil)
	return xf.Synthesize1D(b, lo, hi, nil)
}

func maxErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestBankPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range allBanks() {
		for _, n := range []int{16, 24, 48, 88, 128} {
			x := make([]float32, n)
			for i := range x {
				x[i] = float32(rng.Float64()*510 - 255)
			}
			y := roundTripAligned(t, b, x)
			if err := maxErr(x, y); err > 1e-2 {
				t.Errorf("bank %s n=%d: max reconstruction error %g", b.Name, n, err)
			}
		}
	}
}

func TestBankPRLeGallTight(t *testing.T) {
	// The rational 5/3 filters should reconstruct to float32 rounding.
	rng := rand.New(rand.NewSource(8))
	x := make([]float32, 64)
	for i := range x {
		x[i] = float32(rng.Intn(256))
	}
	y := roundTripAligned(t, LeGall53, x)
	if err := maxErr(x, y); err > 1e-3 {
		t.Errorf("LeGall53: max error %g, want < 1e-3", err)
	}
}

func TestBankDelaysDiffer(t *testing.T) {
	// The delayed tree-B bank must shift the round trip by exactly one
	// extra sample relative to tree A.
	dA := CDF97.Delay()
	dB := cdf97Delayed.Delay()
	if (dB-dA+48)%48 != 1 && (dA-dB+48)%48 != 1 {
		t.Errorf("delayed bank should differ by 1 rotation: A=%d B=%d", dA, dB)
	}
}

func TestBankImpulseResponseLowpassDC(t *testing.T) {
	// A constant signal must pass through the lowpass branch essentially
	// unchanged after reconstruction (DC preservation).
	for _, b := range allBanks() {
		x := make([]float32, 32)
		for i := range x {
			x[i] = 100
		}
		y := roundTripAligned(t, b, x)
		if err := maxErr(x, y); err > 1e-2 {
			t.Errorf("bank %s: DC not preserved, err=%g", b.Name, err)
		}
	}
}

func TestOrthogonalBankParseval(t *testing.T) {
	// Daub4 is orthonormal: subband energy must equal signal energy.
	rng := rand.New(rand.NewSource(9))
	x := make([]float32, 128)
	var ex float64
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		ex += float64(x[i]) * float64(x[i])
	}
	xf := NewXfm(signal.RefKernel{})
	lo, hi := xf.Analyze1D(Daub4, x, nil, nil)
	var es float64
	for i := range lo {
		es += float64(lo[i])*float64(lo[i]) + float64(hi[i])*float64(hi[i])
	}
	if rel := math.Abs(es-ex) / ex; rel > 1e-4 {
		t.Errorf("Daub4 Parseval violated: signal %g subbands %g (rel %g)", ex, es, rel)
	}
}

func TestTapsShiftedPanicsOnOverflow(t *testing.T) {
	var taps signal.Taps
	taps[0] = 1
	defer func() {
		if recover() == nil {
			t.Fatal("Shifted(-1) with a nonzero tap at index 0 should panic")
		}
	}()
	taps.Shifted(-1)
}

func TestTapsReversedInvolution(t *testing.T) {
	f := func(vals [12]float32) bool {
		taps := signal.Taps(vals)
		return taps.Reversed().Reversed() == taps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRQuickRandomSignals(t *testing.T) {
	// Property: perfect reconstruction holds for arbitrary random signals
	// of arbitrary even length.
	f := func(seed int64, ln uint8) bool {
		n := 16 + 2*int(ln%57) // even in [16, 128]
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Float64()*200 - 100)
		}
		y := roundTripAligned(t, CDF97, x)
		return maxErr(x, y) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package wavelet

import (
	"fmt"
	"math"
	"testing"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
)

// These tests pin the operator-fusion claim at the transform layer: the
// dual-stream fused forward (shared row passes, blocked dual-tree column
// gathers) and the fused quad-layout inverse must match the unfused
// cascade bit for bit — every tree coefficient plane, every complex band,
// the reconstruction, and the modeled charge sequence — sequential and
// across a worker pool.

// compareTreePlanes asserts the quad (tree) detail planes and lowpass
// residuals of two pyramids match bitwise — the layout the fused rule
// kernels read and write directly.
func compareTreePlanes(t *testing.T, label string, a, b *DTPyramid) {
	t.Helper()
	if a.NumLevels() != b.NumLevels() {
		t.Fatalf("%s: depth mismatch", label)
	}
	for c := 0; c < numTrees; c++ {
		for lv := 0; lv < a.NumLevels(); lv++ {
			for bi := 0; bi < 3; bi++ {
				fa, fb := a.TreeBand(c, lv, bi), b.TreeBand(c, lv, bi)
				if fa.W != fb.W || fa.H != fb.H {
					t.Fatalf("%s: tree %d level %d band %d shape mismatch", label, c, lv+1, bi)
				}
				for i := range fa.Pix {
					if math.Float32bits(fa.Pix[i]) != math.Float32bits(fb.Pix[i]) {
						t.Fatalf("%s: tree %d level %d band %d differs at %d", label, c, lv+1, bi, i)
					}
				}
			}
		}
		for i := range a.LLs[c].Pix {
			if math.Float32bits(a.LLs[c].Pix[i]) != math.Float32bits(b.LLs[c].Pix[i]) {
				t.Fatalf("%s: LL tree %d differs at %d", label, c, i)
			}
		}
	}
}

func newTimedDT(mk func() timedKernel, workers int) (*DTCWT, timedKernel, *kernels.Workers) {
	k := mk()
	x := NewXfm(k)
	var w *kernels.Workers
	if workers > 1 {
		w = kernels.NewWorkers(workers)
		x.SetWorkers(w)
	}
	return NewDTCWT(x, DefaultTreeBanks()), k, w
}

// TestForwardPairBitExact runs the fused dual-stream forward against two
// sequential unfused forwards, in both materialization modes, and the
// fused quad inverse against the distributing inverse, across engines,
// geometries and worker counts.
func TestForwardPairBitExact(t *testing.T) {
	withParallelism(t, 8)
	sizes := []wh{{16, 16}, {33, 31}, {64, 48}, {97, 61}}
	for name, mk := range tileEngines {
		for _, sz := range sizes {
			levels := MaxLevels(sz.w, sz.h)
			if levels > 3 {
				levels = 3
			}
			vis := testFrame(sz.w, sz.h, int64(sz.w*100+sz.h))
			ir := testFrame(sz.w, sz.h, int64(sz.w*100+sz.h+1))
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s %dx%d lv=%d workers=%d", name, sz.w, sz.h, levels, workers)

				refDT, refK, refW := newTimedDT(mk, workers)
				refA, err := refDT.Forward(vis, levels)
				if err != nil {
					t.Fatalf("%s: forward vis: %v", label, err)
				}
				refB, err := refDT.Forward(ir, levels)
				if err != nil {
					t.Fatalf("%s: forward ir: %v", label, err)
				}
				refFwd := refK.Elapsed()

				// Fused forward, complex bands materialized: full pyramids
				// (tree planes, complex bands, residuals) and the modeled
				// charge total must match the two unfused forwards.
				cDT, cK, cW := newTimedDT(mk, workers)
				pa, pb := &DTPyramid{}, &DTPyramid{}
				if err := cDT.ForwardPairInto(pa, pb, vis, ir, levels, true); err != nil {
					t.Fatalf("%s: fused pair: %v", label, err)
				}
				comparePyramids(t, label+" vis", refA, pa)
				comparePyramids(t, label+" ir", refB, pb)
				compareTreePlanes(t, label+" vis", refA, pa)
				compareTreePlanes(t, label+" ir", refB, pb)
				if cK.Elapsed() != refFwd {
					t.Fatalf("%s: fused forward modeled %v, unfused %v", label, cK.Elapsed(), refFwd)
				}
				if rn, ok := refK.(*engine.NEON); ok {
					if rn.Unit().C != cK.(*engine.NEON).Unit().C {
						t.Fatalf("%s: fused instruction ledger differs", label)
					}
				}

				// Fused forward in quad-only mode (complex planes elided),
				// then the fused inverse against the distributing inverse.
				qDT, qK, qW := newTimedDT(mk, workers)
				qa, qb := &DTPyramid{}, &DTPyramid{}
				if err := qDT.ForwardPairInto(qa, qb, vis, ir, levels, false); err != nil {
					t.Fatalf("%s: quad pair: %v", label, err)
				}
				compareTreePlanes(t, label+" quad vis", refA, qa)
				compareTreePlanes(t, label+" quad ir", refB, qb)
				if qK.Elapsed() != refFwd {
					t.Fatalf("%s: quad forward modeled %v, unfused %v", label, qK.Elapsed(), refFwd)
				}
				recRef, err := refDT.Inverse(refA)
				if err != nil {
					t.Fatalf("%s: inverse: %v", label, err)
				}
				// Inverse distributed refA's complex bands back into its
				// tree planes (the c2q float roundtrip the fused rule
				// kernels reproduce per element). Feed those exact quads to
				// the fused inverse: its blocked synthesis must reconstruct
				// them bit-identically to the unfused column-at-a-time path.
				for c := 0; c < numTrees; c++ {
					for lv := 0; lv < levels; lv++ {
						for bi := 0; bi < 3; bi++ {
							copy(qa.TreeBand(c, lv, bi).Pix, refA.TreeBand(c, lv, bi).Pix)
						}
					}
				}
				recQ, err := qDT.InverseFused(qa)
				if err != nil {
					t.Fatalf("%s: fused inverse: %v", label, err)
				}
				compareFrames(t, label+" reconstruction", recRef, recQ)
				if refK.Elapsed()-refFwd != qK.Elapsed()-refFwd {
					t.Fatalf("%s: fused inverse modeled %v, unfused %v",
						label, qK.Elapsed()-refFwd, refK.Elapsed()-refFwd)
				}
				for _, w := range []*kernels.Workers{refW, cW, qW} {
					if w != nil {
						w.Close()
					}
				}
			}
		}
	}
}

// TestForwardPairFallback pins the safe path for kernels without tile
// compute: ForwardPairInto silently degrades to two unfused forwards.
func TestForwardPairFallback(t *testing.T) {
	x := NewXfm(signal.RefKernel{})
	if x.TileCapable() {
		t.Fatal("RefKernel must not offer tile compute")
	}
	dt := NewDTCWT(x, DefaultTreeBanks())
	vis := testFrame(33, 31, 5)
	ir := testFrame(33, 31, 6)
	pa, pb := &DTPyramid{}, &DTPyramid{}
	if err := dt.ForwardPairInto(pa, pb, vis, ir, 2, true); err != nil {
		t.Fatal(err)
	}
	refDT := NewDTCWT(NewXfm(signal.RefKernel{}), DefaultTreeBanks())
	refA, err := refDT.Forward(vis, 2)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := refDT.Forward(ir, 2)
	if err != nil {
		t.Fatal(err)
	}
	comparePyramids(t, "fallback vis", refA, pa)
	comparePyramids(t, "fallback ir", refB, pb)
}

// TestForwardPairErrors covers the argument validation paths.
func TestForwardPairErrors(t *testing.T) {
	dt := NewDTCWT(NewXfm(engine.NewNEON(false)), DefaultTreeBanks())
	vis := testFrame(32, 24, 1)
	pa, pb := &DTPyramid{}, &DTPyramid{}
	if err := dt.ForwardPairInto(pa, pb, vis, testFrame(16, 12, 2), 2, true); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := dt.ForwardPairInto(pa, pb, vis, vis, 0, true); err == nil {
		t.Error("levels=0 accepted")
	}
	if err := dt.ForwardPairInto(pa, pb, vis, vis, 99, true); err == nil {
		t.Error("absurd depth accepted")
	}
	if err := dt.ShapeQuadPyramid(pa, 32, 24, 99); err == nil {
		t.Error("ShapeQuadPyramid accepted absurd depth")
	}
	if _, err := dt.InverseFused(&DTPyramid{}); err == nil {
		t.Error("InverseFused accepted an empty pyramid")
	}
}

// TestShapeQuadPyramidReuse pins the workspace contract the fused rule
// path relies on: reshaping at the same geometry keeps the planes (no
// churn), reshaping at a new geometry rebuilds them.
func TestShapeQuadPyramidReuse(t *testing.T) {
	dt := NewDTCWT(NewXfm(engine.NewNEON(false)), DefaultTreeBanks())
	p := &DTPyramid{}
	if err := dt.ShapeQuadPyramid(p, 64, 48, 2); err != nil {
		t.Fatal(err)
	}
	before := p.TreeBand(TreeAA, 0, 0).Pix
	if err := dt.ShapeQuadPyramid(p, 64, 48, 2); err != nil {
		t.Fatal(err)
	}
	if &before[0] != &p.TreeBand(TreeAA, 0, 0).Pix[0] {
		t.Fatal("same-geometry reshape reallocated the tree planes")
	}
	if err := dt.ShapeQuadPyramid(p, 48, 64, 2); err != nil {
		t.Fatal(err)
	}
	if got := p.TreeBand(TreeAA, 0, 0); got.W == 32 {
		t.Fatalf("reshape kept the old geometry: %dx%d", got.W, got.H)
	}
	p.Release()
}

package wavelet

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// These tests pin the tentpole determinism claim at the transform layer:
// a tiled, multi-worker DT-CWT must match the sequential one bit for bit —
// every subband coefficient, every lowpass residual, the reconstruction,
// the modeled elapsed time and the NEON instruction ledger — across odd,
// tiny and non-power-of-two geometries, all depths and worker counts.

// withParallelism raises GOMAXPROCS so worker pools get real parallelism
// even on single-core CI shards (NewWorkers caps at GOMAXPROCS).
func withParallelism(t testing.TB, n int) {
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

type timedKernel interface {
	signal.Kernel
	Elapsed() sim.Time
}

var tileEngines = map[string]func() timedKernel{
	"arm":         func() timedKernel { return engine.NewARM() },
	"neon-auto":   func() timedKernel { return engine.NewNEON(false) },
	"neon-manual": func() timedKernel { return engine.NewNEON(true) },
}

func testFrame(w, h int, seed int64) *frame.Frame {
	f := frame.New(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Pix {
		f.Pix[i] = float32(rng.NormFloat64() * 80)
	}
	return f
}

// runDTCWT does a forward+inverse round trip and returns the pyramid and
// reconstruction (both plainly allocated).
func runDTCWT(t *testing.T, k signal.Kernel, workers *kernels.Workers, img *frame.Frame, levels int) (*DTPyramid, *frame.Frame) {
	t.Helper()
	x := NewXfm(k)
	x.SetWorkers(workers)
	dt := NewDTCWT(x, DefaultTreeBanks())
	p, err := dt.Forward(img, levels)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	rec, err := dt.Inverse(p)
	if err != nil {
		t.Fatalf("inverse: %v", err)
	}
	return p, rec
}

func comparePyramids(t *testing.T, label string, a, b *DTPyramid) {
	t.Helper()
	if len(a.Levels) != len(b.Levels) {
		t.Fatalf("%s: depth mismatch", label)
	}
	for lv := range a.Levels {
		for bi := range a.Levels[lv].Bands {
			ba, bb := a.Levels[lv].Bands[bi], b.Levels[lv].Bands[bi]
			for i := range ba.Re {
				if math.Float32bits(ba.Re[i]) != math.Float32bits(bb.Re[i]) ||
					math.Float32bits(ba.Im[i]) != math.Float32bits(bb.Im[i]) {
					t.Fatalf("%s: level %d band %d differs at %d", label, lv+1, bi, i)
				}
			}
		}
	}
	for c := range a.LLs {
		for i := range a.LLs[c].Pix {
			if math.Float32bits(a.LLs[c].Pix[i]) != math.Float32bits(b.LLs[c].Pix[i]) {
				t.Fatalf("%s: LL tree %d differs at %d", label, c, i)
			}
		}
	}
}

func compareFrames(t *testing.T, label string, a, b *frame.Frame) {
	t.Helper()
	if a.W != b.W || a.H != b.H {
		t.Fatalf("%s: size mismatch %dx%d vs %dx%d", label, a.W, a.H, b.W, b.H)
	}
	for i := range a.Pix {
		if math.Float32bits(a.Pix[i]) != math.Float32bits(b.Pix[i]) {
			t.Fatalf("%s: pixel %d differs: %g vs %g", label, i, a.Pix[i], b.Pix[i])
		}
	}
}

func TestTiledDTCWTBitExact(t *testing.T) {
	withParallelism(t, 8)
	sizes := []wh{{7, 5}, {16, 16}, {17, 9}, {33, 31}, {64, 48}, {97, 61}, {160, 120}}
	for name, mk := range tileEngines {
		for _, sz := range sizes {
			maxLv := MaxLevels(sz.w, sz.h)
			if maxLv > 3 {
				maxLv = 3
			}
			for levels := 1; levels <= maxLv; levels++ {
				img := testFrame(sz.w, sz.h, int64(sz.w*1000+sz.h))
				seqK := mk()
				seqP, seqRec := runDTCWT(t, seqK, nil, img, levels)
				for _, workers := range []int{1, 2, 3, 8} {
					label := fmt.Sprintf("%s %dx%d lv=%d workers=%d", name, sz.w, sz.h, levels, workers)
					w := kernels.NewWorkers(workers)
					tileK := mk()
					x := NewXfm(tileK)
					x.SetWorkers(w)
					if workers > 1 && !x.tiledKernels() {
						t.Fatalf("%s: tiled path not engaged", label)
					}
					tileP, tileRec := runDTCWT(t, tileK, w, img, levels)
					comparePyramids(t, label, seqP, tileP)
					compareFrames(t, label, seqRec, tileRec)
					if seqK.Elapsed() != tileK.Elapsed() {
						t.Fatalf("%s: modeled time %v != sequential %v", label, tileK.Elapsed(), seqK.Elapsed())
					}
					if sn, ok := seqK.(*engine.NEON); ok {
						if sn.Unit().C != tileK.(*engine.NEON).Unit().C {
							t.Fatalf("%s: instruction ledger differs from sequential", label)
						}
					}
					w.Close()
				}
			}
		}
	}
}

// TestTiledStructureLoopsAllEngines checks that the engine-independent
// pixel-map loops (q2c/c2q/accumulate/scale) tile correctly for a kernel
// that does NOT implement TileKernel: the filter passes stay sequential,
// the structure loops still fan out, and everything matches bit for bit.
func TestTiledStructureLoopsAllEngines(t *testing.T) {
	withParallelism(t, 8)
	img := testFrame(48, 36, 7)
	seqP, seqRec := runDTCWT(t, signal.RefKernel{}, nil, img, 2)
	w := kernels.NewWorkers(4)
	defer w.Close()
	x := NewXfm(signal.RefKernel{})
	x.SetWorkers(w)
	if x.tiledKernels() {
		t.Fatal("RefKernel must not report tiled kernel support")
	}
	tileP, tileRec := runDTCWT(t, signal.RefKernel{}, w, img, 2)
	comparePyramids(t, "ref-kernel", seqP, tileP)
	compareFrames(t, "ref-kernel", seqRec, tileRec)
}

// FuzzTiledRoundTrip drives random geometries, depths, worker counts and
// engines through the sequential-vs-tiled equivalence.
func FuzzTiledRoundTrip(f *testing.F) {
	f.Add(uint8(7), uint8(5), uint8(1), uint8(0), uint8(2), int64(1))
	f.Add(uint8(16), uint8(16), uint8(2), uint8(1), uint8(3), int64(2))
	f.Add(uint8(33), uint8(31), uint8(3), uint8(2), uint8(8), int64(3))
	f.Add(uint8(2), uint8(48), uint8(1), uint8(1), uint8(2), int64(4))
	f.Fuzz(func(t *testing.T, w8, h8, lv8, eng8, wk8 uint8, seed int64) {
		withParallelism(t, 8)
		w := 2 + int(w8)%47
		h := 2 + int(h8)%47
		maxLv := MaxLevels(w, h)
		if maxLv == 0 {
			t.Skip()
		}
		levels := 1 + int(lv8)%maxLv
		names := []string{"arm", "neon-auto", "neon-manual"}
		mk := tileEngines[names[int(eng8)%len(names)]]
		workers := 2 + int(wk8)%7
		img := testFrame(w, h, seed)

		seqK := mk()
		seqP, seqRec := runDTCWT(t, seqK, nil, img, levels)
		pool := kernels.NewWorkers(workers)
		defer pool.Close()
		tileK := mk()
		tileP, tileRec := runDTCWT(t, tileK, pool, img, levels)
		comparePyramids(t, "fuzz", seqP, tileP)
		compareFrames(t, "fuzz", seqRec, tileRec)
		if seqK.Elapsed() != tileK.Elapsed() {
			t.Fatalf("fuzz: modeled time diverged")
		}
	})
}

// scratchState fingerprints every scratch buffer (backing array identity
// and capacity) so tests can assert the transform stops growing scratch
// after warmup.
func scratchState(x *Xfm) []string {
	var out []string
	add := func(name string, s *scratch) {
		if cap(s.buf) == 0 {
			out = append(out, name+":empty")
			return
		}
		out = append(out, fmt.Sprintf("%s:%p+%d", name, s.buf[:1], cap(s.buf)))
	}
	for i, s := range []*scratch{&x.px, &x.plo, &x.phi, &x.y, &x.y2, &x.col, &x.hiCol, &x.lo, &x.hi} {
		add(fmt.Sprintf("x%d", i), s)
	}
	for wi := range x.ws {
		ws := &x.ws[wi]
		for i, s := range []*scratch{&ws.px, &ws.plo, &ws.phi, &ws.y, &ws.y2, &ws.col, &ws.hiCol, &ws.lo, &ws.hi} {
			add(fmt.Sprintf("ws%d.%d", wi, i), s)
		}
	}
	return out
}

// TestScratchStableAfterWarmup pins the satellite claim: after one warmup
// frame, further frames at the same geometry never grow or reallocate any
// scratch buffer — sequential or tiled, with or without a backing pool.
func TestScratchStableAfterWarmup(t *testing.T) {
	withParallelism(t, 8)
	for _, tc := range []struct {
		name    string
		workers int
		pooled  bool
	}{
		{"sequential-make", 1, false},
		{"tiled-make", 4, false},
		{"tiled-pooled", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := NewXfm(engine.NewNEON(false))
			var pool *bufpool.Pool
			if tc.pooled {
				pool = bufpool.New(bufpool.Options{})
				x.UseScratchPool(pool)
			}
			var w *kernels.Workers
			if tc.workers > 1 {
				w = kernels.NewWorkers(tc.workers)
				defer w.Close()
				x.SetWorkers(w)
			}
			dt := NewDTCWT(x, DefaultTreeBanks())
			img := testFrame(97, 61, 42)
			run := func() {
				p, err := dt.Forward(img, 2)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := dt.Inverse(p); err != nil {
					t.Fatal(err)
				}
			}
			run()
			warm := scratchState(x)
			for i := 0; i < 3; i++ {
				run()
			}
			after := scratchState(x)
			if len(warm) != len(after) {
				t.Fatalf("scratch set changed: %d -> %d buffers", len(warm), len(after))
			}
			for i := range warm {
				if warm[i] != after[i] {
					t.Fatalf("scratch %d changed after warmup: %s -> %s", i, warm[i], after[i])
				}
			}
			if tc.pooled {
				if got := pool.Stats().Outstanding; got == 0 {
					t.Fatal("expected scratch leases outstanding from the pool")
				}
				x.ReleaseScratch()
				if got := pool.Stats().Outstanding; got != 0 {
					t.Fatalf("ReleaseScratch left %d leases outstanding", got)
				}
			}
		})
	}
}

package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
)

func randomFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	return f
}

func banksN(b *Bank, n int) []*Bank {
	out := make([]*Bank, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestForward2DSubbandSizes(t *testing.T) {
	xf := NewXfm(signal.RefKernel{})
	img := randomFrame(rand.New(rand.NewSource(1)), 88, 72)
	d, err := Forward2D(xf, banksN(LeGall53, 3), banksN(LeGall53, 3), img, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantW, wantH := []int{44, 22, 11}, []int{36, 18, 9}
	for lv, b := range d.Levels {
		if b.HL.W != wantW[lv] || b.HL.H != wantH[lv] {
			t.Errorf("level %d: HL %dx%d, want %dx%d", lv+1, b.HL.W, b.HL.H, wantW[lv], wantH[lv])
		}
	}
	if d.LL.W != 11 || d.LL.H != 9 {
		t.Errorf("LL %dx%d, want 11x9", d.LL.W, d.LL.H)
	}
}

func TestDWT2DPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xf := NewXfm(signal.RefKernel{})
	sizes := []struct{ w, h, lv int }{
		{88, 72, 3}, {64, 48, 3}, {40, 40, 3}, {32, 24, 3}, {16, 16, 2},
	}
	for _, b := range []*Bank{LeGall53, CDF97, Daub4} {
		for _, s := range sizes {
			img := randomFrame(rng, s.w, s.h)
			d, err := Forward2D(xf, banksN(b, s.lv), banksN(b, s.lv), img, s.lv)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", b.Name, s.w, s.h, err)
			}
			rec, err := Inverse2D(xf, d)
			if err != nil {
				t.Fatal(err)
			}
			e, err := frame.MaxAbsDiff(img, rec)
			if err != nil {
				t.Fatal(err)
			}
			if e > 5e-2 {
				t.Errorf("%s %dx%dx%d: max error %g", b.Name, s.w, s.h, s.lv, e)
			}
		}
	}
}

func TestDWT2DOddSizes(t *testing.T) {
	// The paper's 35x35 test frames have odd dimensions; edge replication
	// must preserve perfect reconstruction and the original size.
	rng := rand.New(rand.NewSource(3))
	xf := NewXfm(signal.RefKernel{})
	for _, s := range []struct{ w, h int }{{35, 35}, {33, 24}, {40, 27}, {11, 9}} {
		img := randomFrame(rng, s.w, s.h)
		lv := MaxLevels(s.w, s.h)
		if lv > 3 {
			lv = 3
		}
		d, err := Forward2D(xf, banksN(CDF97, lv), banksN(CDF97, lv), img, lv)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.w, s.h, err)
		}
		rec, err := Inverse2D(xf, d)
		if err != nil {
			t.Fatal(err)
		}
		if rec.W != s.w || rec.H != s.h {
			t.Fatalf("%dx%d: reconstructed %dx%d", s.w, s.h, rec.W, rec.H)
		}
		e, _ := frame.MaxAbsDiff(img, rec)
		if e > 5e-2 {
			t.Errorf("%dx%d lv=%d: max error %g", s.w, s.h, lv, e)
		}
	}
}

func TestMaxLevels(t *testing.T) {
	// Edge replication at odd sizes lets decomposition continue past the
	// first odd level: 88x72 -> 44x36 -> 22x18 -> 11x9(pad 12x10) -> 6x5
	// (pad 6x6) -> 3x3(pad 4x4) -> stop.
	cases := []struct{ w, h, want int }{
		{88, 72, 6}, {32, 24, 4}, {4, 4, 1}, {3, 3, 1}, {2, 2, 0}, {1, 1, 0},
	}
	for _, c := range cases {
		if got := MaxLevels(c.w, c.h); got != c.want {
			t.Errorf("MaxLevels(%d,%d)=%d, want %d", c.w, c.h, got, c.want)
		}
	}
}

func TestForward2DRejectsBadLevels(t *testing.T) {
	xf := NewXfm(signal.RefKernel{})
	img := frame.New(16, 16)
	if _, err := Forward2D(xf, banksN(LeGall53, 9), banksN(LeGall53, 9), img, 9); err == nil {
		t.Error("levels=9 on 16x16 should fail")
	}
	if _, err := Forward2D(xf, banksN(LeGall53, 1), banksN(LeGall53, 1), img, 0); err == nil {
		t.Error("levels=0 should fail")
	}
	if _, err := Forward2D(xf, banksN(LeGall53, 1), banksN(LeGall53, 1), img, 2); err == nil {
		t.Error("insufficient banks should fail")
	}
}

func TestDWTSubbandLayout(t *testing.T) {
	// Fig. 1 of the paper: an image with pure horizontal frequency content
	// concentrates energy in the HL subband (high horizontal, low
	// vertical), and vice versa.
	xf := NewXfm(signal.RefKernel{})
	w, h := 64, 64
	horiz := frame.New(w, h) // fast variation along x
	vert := frame.New(w, h)  // fast variation along y
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			horiz.Set(x, y, float32(128+100*math.Cos(math.Pi*float64(x))))
			vert.Set(x, y, float32(128+100*math.Cos(math.Pi*float64(y))))
		}
	}
	dh, err := Forward2D(xf, banksN(CDF97, 1), banksN(CDF97, 1), horiz, 1)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := Forward2D(xf, banksN(CDF97, 1), banksN(CDF97, 1), vert, 1)
	if err != nil {
		t.Fatal(err)
	}
	if BandEnergy(dh.Levels[0].HL) < 100*BandEnergy(dh.Levels[0].LH) {
		t.Errorf("horizontal grating: HL=%g should dominate LH=%g",
			BandEnergy(dh.Levels[0].HL), BandEnergy(dh.Levels[0].LH))
	}
	if BandEnergy(dv.Levels[0].LH) < 100*BandEnergy(dv.Levels[0].HL) {
		t.Errorf("vertical grating: LH=%g should dominate HL=%g",
			BandEnergy(dv.Levels[0].LH), BandEnergy(dv.Levels[0].HL))
	}
}

func TestMosaicDimensions(t *testing.T) {
	xf := NewXfm(signal.RefKernel{})
	img := randomFrame(rand.New(rand.NewSource(4)), 64, 48)
	d, err := Forward2D(xf, banksN(LeGall53, 2), banksN(LeGall53, 2), img, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mosaic()
	if m.W != 64 || m.H != 48 {
		t.Errorf("mosaic %dx%d, want 64x48", m.W, m.H)
	}
}

func TestDecompSeparability(t *testing.T) {
	// Linearity: DWT(a+b) = DWT(a) + DWT(b) per subband.
	rng := rand.New(rand.NewSource(5))
	xf := NewXfm(signal.RefKernel{})
	a := randomFrame(rng, 32, 32)
	b := randomFrame(rng, 32, 32)
	sum := frame.New(32, 32)
	for i := range sum.Pix {
		sum.Pix[i] = a.Pix[i] + b.Pix[i]
	}
	da, _ := Forward2D(xf, banksN(CDF97, 2), banksN(CDF97, 2), a, 2)
	db, _ := Forward2D(xf, banksN(CDF97, 2), banksN(CDF97, 2), b, 2)
	ds, _ := Forward2D(xf, banksN(CDF97, 2), banksN(CDF97, 2), sum, 2)
	for lv := range ds.Levels {
		for i := range ds.Levels[lv].HH.Pix {
			want := da.Levels[lv].HH.Pix[i] + db.Levels[lv].HH.Pix[i]
			got := ds.Levels[lv].HH.Pix[i]
			if math.Abs(float64(got-want)) > 0.3 {
				t.Fatalf("level %d HH[%d]: %g != %g", lv+1, i, got, want)
			}
		}
	}
}

package wavelet

import (
	"fmt"
	"runtime"
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/kernels"
)

// Wall-clock microbenchmarks of the tiled 2D transform hot loops, the
// regression surface the CI kernel-bench smoke job watches. Worker counts
// above the host's cores degenerate to time-slicing, so absolute numbers
// only compare within one machine.

func benchDTCWT(b *testing.B, workers int, inverse bool) {
	prev := runtime.GOMAXPROCS(max(workers, runtime.GOMAXPROCS(0)))
	defer runtime.GOMAXPROCS(prev)
	x := NewXfm(engine.NewNEON(false))
	pool := bufpool.New(bufpool.Options{})
	x.UseScratchPool(pool)
	var w *kernels.Workers
	if workers > 1 {
		w = kernels.NewWorkers(workers)
		defer w.Close()
		x.SetWorkers(w)
	}
	dt := NewDTCWTPooled(x, DefaultTreeBanks(), pool)
	img := testFrame(320, 180, 11)
	p := &DTPyramid{}
	if _, err := dt.ForwardInto(p, img, 3); err != nil {
		b.Fatal(err)
	}
	rec, err := dt.Inverse(p)
	if err != nil {
		b.Fatal(err)
	}
	rec.Release()
	b.SetBytes(int64(4 * img.W * img.H))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inverse {
			rec, err := dt.Inverse(p)
			if err != nil {
				b.Fatal(err)
			}
			rec.Release()
		} else if _, err := dt.ForwardInto(p, img, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelForward2D(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDTCWT(b, workers, false)
		})
	}
}

func BenchmarkKernelInverse2D(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDTCWT(b, workers, true)
		})
	}
}

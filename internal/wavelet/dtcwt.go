package wavelet

import (
	"errors"
	"fmt"
	"math"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
)

// The dual tree runs four separable decompositions, one per (row tree,
// column tree) combination. Tree B uses one-sample-delayed filters at level
// 1 and time-reversed filters at levels >= 2, giving the approximate
// quarter-sample offset that makes the combined transform nearly analytic.
const numTrees = 4

// Tree combination indices: the first letter names the row (horizontal)
// tree and the second the column (vertical) tree.
const (
	TreeAA = iota
	TreeAB
	TreeBA
	TreeBB
)

// Orientation labels the six complex subbands of a DT-CWT level, in
// degrees. The exact label-to-band map is a convention; selectivity (a
// grating at +45 degrees excites the +45 band far more than the -45 band)
// is what the tests verify.
type Orientation int

// The six DT-CWT orientations.
const (
	Orient15  Orientation = 15
	Orient45  Orientation = 45
	Orient75  Orientation = 75
	OrientM15 Orientation = -15
	OrientM45 Orientation = -45
	OrientM75 Orientation = -75
)

// Orientations lists the band order used in DTLevel.Bands.
var Orientations = [6]Orientation{Orient15, Orient45, Orient75, OrientM75, OrientM45, OrientM15}

// ComplexBand is one oriented complex subband. A band built by the pooled
// transform path is backed by two leased planes; release returns them.
type ComplexBand struct {
	W, H   int
	Re, Im []float32

	re, im *frame.Frame // backing leases; nil for plainly allocated bands
}

// NewComplexBand allocates a zeroed w x h complex band.
func NewComplexBand(w, h int) *ComplexBand {
	return &ComplexBand{W: w, H: h, Re: make([]float32, w*h), Im: make([]float32, w*h)}
}

// newComplexBandPooled leases the band's two planes from pool.
func newComplexBandPooled(w, h int, pool *bufpool.Pool) (*ComplexBand, error) {
	re, err := pool.Get(w, h)
	if err != nil {
		return nil, err
	}
	im, err := pool.Get(w, h)
	if err != nil {
		re.Release()
		return nil, err
	}
	return &ComplexBand{W: w, H: h, Re: re.Pix, Im: im.Pix, re: re, im: im}, nil
}

// release returns a pooled band's planes (no-op for plain bands).
func (b *ComplexBand) release() {
	if b == nil || b.re == nil {
		return
	}
	b.re.Release()
	b.im.Release()
	b.re, b.im = nil, nil
	b.Re, b.Im = nil, nil
}

// Mag returns |z| at index i.
func (b *ComplexBand) Mag(i int) float64 {
	return math.Hypot(float64(b.Re[i]), float64(b.Im[i]))
}

// Energy returns the mean squared magnitude of the band.
func (b *ComplexBand) Energy() float64 {
	var s float64
	for i := range b.Re {
		s += float64(b.Re[i])*float64(b.Re[i]) + float64(b.Im[i])*float64(b.Im[i])
	}
	if len(b.Re) == 0 {
		return 0
	}
	return s / float64(len(b.Re))
}

// Clone returns a deep copy of the band.
func (b *ComplexBand) Clone() *ComplexBand {
	n := &ComplexBand{W: b.W, H: b.H, Re: make([]float32, len(b.Re)), Im: make([]float32, len(b.Im))}
	copy(n.Re, b.Re)
	copy(n.Im, b.Im)
	return n
}

// DTLevel holds the six oriented complex subbands of one scale.
type DTLevel struct {
	Bands [6]*ComplexBand
}

// DTPyramid is a full DT-CWT decomposition: oriented complex detail bands
// per level plus the four real lowpass residuals (one per tree
// combination). Pyramids built by the pooled transform path own leased
// planes; Release returns them all.
type DTPyramid struct {
	W, H   int // original frame size
	Levels []DTLevel
	LLs    [numTrees]*frame.Frame
	trees  [numTrees]*Decomp // retained for inversion bookkeeping
}

// NumLevels reports the decomposition depth.
func (p *DTPyramid) NumLevels() int { return len(p.Levels) }

// Release returns every plane of the pyramid to its pool (a no-op for
// plainly allocated pyramids). The pyramid keeps its structure and must be
// reshaped before reuse; p.LLs alias the per-tree residuals, which are
// released exactly once.
func (p *DTPyramid) Release() {
	for lv := range p.Levels {
		for bi := range p.Levels[lv].Bands {
			p.Levels[lv].Bands[bi].release()
			p.Levels[lv].Bands[bi] = nil
		}
	}
	for c := range p.trees {
		if p.trees[c] != nil {
			p.trees[c].release()
		}
		p.LLs[c] = nil // aliases trees[c].LL, already released
	}
	p.W, p.H = 0, 0
	p.Levels = p.Levels[:0]
}

// shaped reports whether the pyramid is already structured for a w x h
// input at the given depth.
func (p *DTPyramid) shaped(w, h, levels int) bool {
	if p.W != w || p.H != h || len(p.Levels) != levels {
		return false
	}
	for c := 0; c < numTrees; c++ {
		if p.trees[c] == nil || p.trees[c].LL == nil || len(p.trees[c].Levels) != levels {
			return false
		}
	}
	return p.Levels[0].Bands[0] != nil
}

// CloneStructure deep-copies the pyramid (bands, residuals and the
// per-tree bookkeeping needed for inversion) into plain storage. Fusion
// rules write into a clone so the source pyramids stay usable; the pooled
// hot path avoids the copy entirely with FuseInto over a shaped workspace.
func (p *DTPyramid) CloneStructure() *DTPyramid {
	n := &DTPyramid{W: p.W, H: p.H, Levels: make([]DTLevel, len(p.Levels))}
	for lv := range p.Levels {
		for bi, b := range p.Levels[lv].Bands {
			n.Levels[lv].Bands[bi] = b.Clone()
		}
	}
	for c := range p.LLs {
		n.LLs[c] = p.LLs[c].Clone()
		n.trees[c] = p.trees[c].clone()
	}
	return n
}

// clone deep-copies a tree decomposition (banks are immutable and shared).
func (d *Decomp) clone() *Decomp {
	n := &Decomp{
		RowBanks: d.RowBanks,
		ColBanks: d.ColBanks,
		Levels:   make([]Bands, len(d.Levels)),
		LL:       d.LL.Clone(),
		sizes:    append([]wh(nil), d.sizes...),
	}
	for i, b := range d.Levels {
		n.Levels[i] = Bands{HL: b.HL.Clone(), LH: b.LH.Clone(), HH: b.HH.Clone()}
	}
	return n
}

// TreeBanks selects the filter banks of the dual tree.
type TreeBanks struct {
	Level1A *Bank // tree A, level 1
	Level1B *Bank // tree B, level 1 (conventionally Level1A delayed by one)
	DeepA   *Bank // tree A, levels >= 2
	DeepB   *Bank // tree B, levels >= 2 (conventionally DeepA reversed)
}

// DefaultTreeBanks returns the bank set used throughout the paper
// reproduction: CDF 9/7 at level 1 (with the one-sample tree-B delay) and
// the Daubechies-4 pair at deeper levels (time-reversed for tree B).
func DefaultTreeBanks() TreeBanks {
	return TreeBanks{
		Level1A: CDF97,
		Level1B: cdf97Delayed,
		DeepA:   Daub4,
		DeepB:   Daub4Reversed,
	}
}

var cdf97Delayed = CDF97.Delayed("cdf-9/7-delayed")

// banksFor expands the tree banks into per-level slices for one tree.
func (tb TreeBanks) banksFor(tree byte, levels int) []*Bank {
	out := make([]*Bank, levels)
	for i := range out {
		switch {
		case i == 0 && tree == 'a':
			out[i] = tb.Level1A
		case i == 0:
			out[i] = tb.Level1B
		case tree == 'a':
			out[i] = tb.DeepA
		default:
			out[i] = tb.DeepB
		}
	}
	return out
}

// DTCWT runs forward and inverse dual-tree transforms through a kernel.
// It is not safe for concurrent use.
type DTCWT struct {
	X     *Xfm
	Banks TreeBanks

	pool *bufpool.Pool // nil → the allocating fallback

	// Cached per-tree bank expansions, rebuilt only when the depth
	// changes, so the steady-state transform allocates nothing.
	bankLevels int
	banksA     []*Bank
	banksB     []*Bank
}

// NewDTCWT returns a transform bound to the kernel inside x, with plainly
// allocated (non-pooled) planes.
func NewDTCWT(x *Xfm, banks TreeBanks) *DTCWT {
	return &DTCWT{X: x, Banks: banks}
}

// NewDTCWTPooled returns a transform whose working planes — pyramids,
// per-level scratch, reconstructions — are leased from pool.
func NewDTCWTPooled(x *Xfm, banks TreeBanks, pool *bufpool.Pool) *DTCWT {
	return &DTCWT{X: x, Banks: banks, pool: pool}
}

// Pool returns the transform's plane pool (nil for the allocating path).
func (t *DTCWT) Pool() *bufpool.Pool { return t.pool }

func (t *DTCWT) poolOr() *bufpool.Pool {
	if t.pool != nil {
		return t.pool
	}
	return noPool
}

// treeBanks returns the cached per-level bank slices for a tree.
func (t *DTCWT) treeBanks(tree byte, levels int) []*Bank {
	if t.bankLevels != levels {
		t.banksA = t.Banks.banksFor('a', levels)
		t.banksB = t.Banks.banksFor('b', levels)
		t.bankLevels = levels
	}
	if tree == 'a' {
		return t.banksA
	}
	return t.banksB
}

// ShapePyramid (re)shapes p for a w x h input at the given depth, leasing
// planes from the transform's pool: an already-matching pyramid is
// returned untouched, so a per-frame workspace costs nothing in steady
// state. The shaped pyramid carries the full inversion bookkeeping (banks
// and crop sizes), making it a valid fusion destination for FuseInto even
// before any forward transform has run through it.
func (t *DTCWT) ShapePyramid(p *DTPyramid, w, h, levels int) error {
	if levels < 1 || levels > MaxLevels(w, h) {
		return fmt.Errorf("%w: levels=%d for %dx%d", ErrBadLevels, levels, w, h)
	}
	if p.shaped(w, h, levels) {
		// Plane shapes are reusable as-is; refresh the bank bookkeeping in
		// case the pyramid last ran under a transform with different banks.
		for c := 0; c < numTrees; c++ {
			rowTree, colTree := comboTrees(c)
			p.trees[c].RowBanks = t.treeBanks(rowTree, levels)
			p.trees[c].ColBanks = t.treeBanks(colTree, levels)
		}
		return nil
	}
	p.Release()
	pool := t.poolOr()
	p.W, p.H = w, h
	if cap(p.Levels) >= levels {
		p.Levels = p.Levels[:levels]
	} else {
		p.Levels = make([]DTLevel, levels)
	}
	for c := 0; c < numTrees; c++ {
		rowTree, colTree := comboTrees(c)
		if p.trees[c] == nil {
			p.trees[c] = &Decomp{}
		}
		if err := shapeDecomp(p.trees[c], t.treeBanks(rowTree, levels), t.treeBanks(colTree, levels), w, h, levels, pool); err != nil {
			p.Release()
			return err
		}
		p.LLs[c] = p.trees[c].LL
	}
	cw, ch := w, h
	for lv := 0; lv < levels; lv++ {
		_, _, mw, mh := levelGeom(cw, ch)
		for bi := range p.Levels[lv].Bands {
			b, err := newComplexBandPooled(mw, mh, pool)
			if err != nil {
				p.Release()
				return err
			}
			p.Levels[lv].Bands[bi] = b
		}
		cw, ch = mw, mh
	}
	return nil
}

// Forward computes the DT-CWT of img over the given number of levels into
// a fresh pyramid. The pooled hot path is ForwardInto, which reuses a
// workspace pyramid frame over frame; Forward itself always builds anew,
// so callers that hold pyramids across calls (round-trip tests, the
// forward-only benchmarks) stay safe.
func (t *DTCWT) Forward(img *frame.Frame, levels int) (*DTPyramid, error) {
	return t.ForwardInto(&DTPyramid{}, img, levels)
}

// ForwardInto computes the DT-CWT of img into p, reusing p's planes when
// it is already shaped for this geometry (and reshaping it from the pool
// otherwise). Every coefficient of every plane is overwritten, so a reused
// workspace is bit-for-bit a fresh transform. It returns p.
func (t *DTCWT) ForwardInto(p *DTPyramid, img *frame.Frame, levels int) (*DTPyramid, error) {
	if levels < 1 || levels > MaxLevels(img.W, img.H) {
		return nil, fmt.Errorf("%w: levels=%d for %dx%d", ErrBadLevels, levels, img.W, img.H)
	}
	if err := t.ShapePyramid(p, img.W, img.H, levels); err != nil {
		return nil, err
	}
	pool := t.poolOr()
	for c := 0; c < numTrees; c++ {
		if err := forward2DInto(t.X, p.trees[c], img, levels, pool); err != nil {
			return nil, err
		}
	}
	for lv := 0; lv < levels; lv++ {
		combineLevelInto(t.X, p.trees, lv, &p.Levels[lv])
	}
	return p, nil
}

// Inverse reconstructs the frame from the pyramid. The complex bands are
// redistributed to the four trees (the exact inverse of the forward
// combination), each tree is inverted, and the four reconstructions are
// averaged. On the pooled path the returned frame is leased from the
// transform's pool and owned by the caller (Release it to recycle).
func (t *DTCWT) Inverse(p *DTPyramid) (*frame.Frame, error) {
	if p.NumLevels() == 0 {
		return nil, errors.New("wavelet.DTCWT: empty pyramid")
	}
	pool := t.poolOr()
	for lv := range p.Levels {
		distributeLevel(t.X, p.trees, p.Levels[lv], lv)
	}
	var acc *frame.Frame
	for c := 0; c < numTrees; c++ {
		p.trees[c].LL = p.LLs[c]
		rec, err := inverse2DPooled(t.X, p.trees[c], pool)
		if err != nil {
			if acc != nil {
				acc.Release()
			}
			return nil, err
		}
		if acc == nil {
			acc = rec
			continue
		}
		if !acc.SameSize(rec) {
			acc.Release()
			rec.Release()
			return nil, errors.New("wavelet.DTCWT: tree reconstruction size mismatch")
		}
		t.X.pixAcc = accTask{dst: acc.Pix, src: rec.Pix}
		t.X.W.Run(len(acc.Pix), kernels.Grain(len(acc.Pix), 8, t.X.W.N()), &t.X.pixAcc)
		rec.Release()
	}
	t.X.pixScale = scaleTask{dst: acc.Pix}
	t.X.W.Run(len(acc.Pix), kernels.Grain(len(acc.Pix), 4, t.X.W.N()), &t.X.pixScale)
	t.X.chargeCPU(numTrees * len(acc.Pix))
	return acc, nil
}

func comboTrees(c int) (rowTree, colTree byte) {
	switch c {
	case TreeAA:
		return 'a', 'a'
	case TreeAB:
		return 'a', 'b'
	case TreeBA:
		return 'b', 'a'
	default:
		return 'b', 'b'
	}
}

// InvSqrt2 scales the unitary four-real-to-two-complex combination (the
// q2c map and its c2q inverse). Exported for the fused
// combine+rule+distribute kernels in the fusion package, which must mirror
// the per-element expressions here exactly to stay bit-identical.
const InvSqrt2 = 0.7071067811865476

const invSqrt2 = InvSqrt2

// combineLevelInto applies the q2c map to each detail band of one level,
// writing into the pre-shaped bands of out:
//
//	z1 = ((p - q) + i(r + s)) / sqrt2
//	z2 = ((p + q) + i(s - r)) / sqrt2
//
// with p = AA, q = BB, r = AB, s = BA. The map is unitary, so
// |z1|^2 + |z2|^2 = p^2 + q^2 + r^2 + s^2 and it is exactly invertible.
func combineLevelInto(x *Xfm, trees [numTrees]*Decomp, lv int, out *DTLevel) {
	combineLevelCompute(x, trees, lv, out)
	n := len(bandOf(trees[TreeAA], lv, 0).Pix)
	for bi := 0; bi < 3; bi++ {
		x.chargeCPU(4 * n)
	}
}

// distributeLevel applies c2q, the exact inverse of combineLevelInto,
// writing the (possibly fused) complex coefficients back into the four
// trees.
func distributeLevel(x *Xfm, trees [numTrees]*Decomp, l DTLevel, lv int) {
	for bi := 0; bi < 3; bi++ {
		z1 := l.Bands[bi]
		z2 := l.Bands[5-bi]
		p := bandOf(trees[TreeAA], lv, bi)
		q := bandOf(trees[TreeBB], lv, bi)
		r := bandOf(trees[TreeAB], lv, bi)
		s := bandOf(trees[TreeBA], lv, bi)
		n := len(p.Pix)
		x.c2q = c2qTask{z1re: z1.Re, z1im: z1.Im, z2re: z2.Re, z2im: z2.Im,
			p: p.Pix, q: q.Pix, r: r.Pix, s: s.Pix}
		x.W.Run(n, kernels.Grain(n, 32, x.W.N()), &x.c2q)
		x.chargeCPU(4 * n)
	}
}

// bandOf selects detail band bi (0=HL, 1=LH, 2=HH) of a tree level.
func bandOf(d *Decomp, lv, bi int) *frame.Frame {
	switch bi {
	case 0:
		return d.Levels[lv].HL
	case 1:
		return d.Levels[lv].LH
	default:
		return d.Levels[lv].HH
	}
}

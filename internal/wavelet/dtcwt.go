package wavelet

import (
	"errors"
	"fmt"
	"math"

	"zynqfusion/internal/frame"
)

// The dual tree runs four separable decompositions, one per (row tree,
// column tree) combination. Tree B uses one-sample-delayed filters at level
// 1 and time-reversed filters at levels >= 2, giving the approximate
// quarter-sample offset that makes the combined transform nearly analytic.
const numTrees = 4

// Tree combination indices: the first letter names the row (horizontal)
// tree and the second the column (vertical) tree.
const (
	TreeAA = iota
	TreeAB
	TreeBA
	TreeBB
)

// Orientation labels the six complex subbands of a DT-CWT level, in
// degrees. The exact label-to-band map is a convention; selectivity (a
// grating at +45 degrees excites the +45 band far more than the -45 band)
// is what the tests verify.
type Orientation int

// The six DT-CWT orientations.
const (
	Orient15  Orientation = 15
	Orient45  Orientation = 45
	Orient75  Orientation = 75
	OrientM15 Orientation = -15
	OrientM45 Orientation = -45
	OrientM75 Orientation = -75
)

// Orientations lists the band order used in DTLevel.Bands.
var Orientations = [6]Orientation{Orient15, Orient45, Orient75, OrientM75, OrientM45, OrientM15}

// ComplexBand is one oriented complex subband.
type ComplexBand struct {
	W, H   int
	Re, Im []float32
}

// NewComplexBand allocates a zeroed w x h complex band.
func NewComplexBand(w, h int) *ComplexBand {
	return &ComplexBand{W: w, H: h, Re: make([]float32, w*h), Im: make([]float32, w*h)}
}

// Mag returns |z| at index i.
func (b *ComplexBand) Mag(i int) float64 {
	return math.Hypot(float64(b.Re[i]), float64(b.Im[i]))
}

// Energy returns the mean squared magnitude of the band.
func (b *ComplexBand) Energy() float64 {
	var s float64
	for i := range b.Re {
		s += float64(b.Re[i])*float64(b.Re[i]) + float64(b.Im[i])*float64(b.Im[i])
	}
	if len(b.Re) == 0 {
		return 0
	}
	return s / float64(len(b.Re))
}

// Clone returns a deep copy of the band.
func (b *ComplexBand) Clone() *ComplexBand {
	n := &ComplexBand{W: b.W, H: b.H, Re: make([]float32, len(b.Re)), Im: make([]float32, len(b.Im))}
	copy(n.Re, b.Re)
	copy(n.Im, b.Im)
	return n
}

// DTLevel holds the six oriented complex subbands of one scale.
type DTLevel struct {
	Bands [6]*ComplexBand
}

// DTPyramid is a full DT-CWT decomposition: oriented complex detail bands
// per level plus the four real lowpass residuals (one per tree
// combination).
type DTPyramid struct {
	W, H   int // original frame size
	Levels []DTLevel
	LLs    [numTrees]*frame.Frame
	trees  [numTrees]*Decomp // retained for inversion bookkeeping
}

// NumLevels reports the decomposition depth.
func (p *DTPyramid) NumLevels() int { return len(p.Levels) }

// CloneStructure deep-copies the pyramid (bands, residuals and the
// per-tree bookkeeping needed for inversion). Fusion rules write into a
// clone so the source pyramids stay usable.
func (p *DTPyramid) CloneStructure() *DTPyramid {
	n := &DTPyramid{W: p.W, H: p.H, Levels: make([]DTLevel, len(p.Levels))}
	for lv := range p.Levels {
		for bi, b := range p.Levels[lv].Bands {
			n.Levels[lv].Bands[bi] = b.Clone()
		}
	}
	for c := range p.LLs {
		n.LLs[c] = p.LLs[c].Clone()
		n.trees[c] = p.trees[c].clone()
	}
	return n
}

// clone deep-copies a tree decomposition (banks are immutable and shared).
func (d *Decomp) clone() *Decomp {
	n := &Decomp{
		RowBanks: d.RowBanks,
		ColBanks: d.ColBanks,
		Levels:   make([]Bands, len(d.Levels)),
		LL:       d.LL.Clone(),
		sizes:    append([]wh(nil), d.sizes...),
	}
	for i, b := range d.Levels {
		n.Levels[i] = Bands{HL: b.HL.Clone(), LH: b.LH.Clone(), HH: b.HH.Clone()}
	}
	return n
}

// TreeBanks selects the filter banks of the dual tree.
type TreeBanks struct {
	Level1A *Bank // tree A, level 1
	Level1B *Bank // tree B, level 1 (conventionally Level1A delayed by one)
	DeepA   *Bank // tree A, levels >= 2
	DeepB   *Bank // tree B, levels >= 2 (conventionally DeepA reversed)
}

// DefaultTreeBanks returns the bank set used throughout the paper
// reproduction: CDF 9/7 at level 1 (with the one-sample tree-B delay) and
// the Daubechies-4 pair at deeper levels (time-reversed for tree B).
func DefaultTreeBanks() TreeBanks {
	return TreeBanks{
		Level1A: CDF97,
		Level1B: cdf97Delayed,
		DeepA:   Daub4,
		DeepB:   Daub4Reversed,
	}
}

var cdf97Delayed = CDF97.Delayed("cdf-9/7-delayed")

// banksFor expands the tree banks into per-level slices for one tree.
func (tb TreeBanks) banksFor(tree byte, levels int) []*Bank {
	out := make([]*Bank, levels)
	for i := range out {
		switch {
		case i == 0 && tree == 'a':
			out[i] = tb.Level1A
		case i == 0:
			out[i] = tb.Level1B
		case tree == 'a':
			out[i] = tb.DeepA
		default:
			out[i] = tb.DeepB
		}
	}
	return out
}

// DTCWT runs forward and inverse dual-tree transforms through a kernel.
// It is not safe for concurrent use.
type DTCWT struct {
	X     *Xfm
	Banks TreeBanks
}

// NewDTCWT returns a transform bound to the kernel inside x.
func NewDTCWT(x *Xfm, banks TreeBanks) *DTCWT {
	return &DTCWT{X: x, Banks: banks}
}

// Forward computes the DT-CWT of img over the given number of levels.
func (t *DTCWT) Forward(img *frame.Frame, levels int) (*DTPyramid, error) {
	if levels < 1 || levels > MaxLevels(img.W, img.H) {
		return nil, fmt.Errorf("%w: levels=%d for %dx%d", ErrBadLevels, levels, img.W, img.H)
	}
	p := &DTPyramid{W: img.W, H: img.H, Levels: make([]DTLevel, levels)}
	for c := 0; c < numTrees; c++ {
		rowTree, colTree := comboTrees(c)
		d, err := Forward2D(t.X, t.Banks.banksFor(rowTree, levels), t.Banks.banksFor(colTree, levels), img, levels)
		if err != nil {
			return nil, err
		}
		p.trees[c] = d
		p.LLs[c] = d.LL
	}
	for lv := 0; lv < levels; lv++ {
		p.Levels[lv] = combineLevel(t.X, p.trees, lv)
	}
	return p, nil
}

// Inverse reconstructs the frame from the pyramid. The complex bands are
// redistributed to the four trees (the exact inverse of the forward
// combination), each tree is inverted, and the four reconstructions are
// averaged.
func (t *DTCWT) Inverse(p *DTPyramid) (*frame.Frame, error) {
	if p.NumLevels() == 0 {
		return nil, errors.New("wavelet.DTCWT: empty pyramid")
	}
	for lv := range p.Levels {
		distributeLevel(t.X, p.trees, p.Levels[lv], lv)
	}
	var acc *frame.Frame
	for c := 0; c < numTrees; c++ {
		p.trees[c].LL = p.LLs[c]
		rec, err := Inverse2D(t.X, p.trees[c])
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = rec
			continue
		}
		if !acc.SameSize(rec) {
			return nil, errors.New("wavelet.DTCWT: tree reconstruction size mismatch")
		}
		for i := range acc.Pix {
			acc.Pix[i] += rec.Pix[i]
		}
	}
	for i := range acc.Pix {
		acc.Pix[i] *= 1.0 / numTrees
	}
	t.X.chargeCPU(numTrees * len(acc.Pix))
	return acc, nil
}

func comboTrees(c int) (rowTree, colTree byte) {
	switch c {
	case TreeAA:
		return 'a', 'a'
	case TreeAB:
		return 'a', 'b'
	case TreeBA:
		return 'b', 'a'
	default:
		return 'b', 'b'
	}
}

// invSqrt2 scales the unitary four-real-to-two-complex combination.
const invSqrt2 = 0.7071067811865476

// combineLevel applies the q2c map to each detail band of one level:
//
//	z1 = ((p - q) + i(r + s)) / sqrt2
//	z2 = ((p + q) + i(s - r)) / sqrt2
//
// with p = AA, q = BB, r = AB, s = BA. The map is unitary, so
// |z1|^2 + |z2|^2 = p^2 + q^2 + r^2 + s^2 and it is exactly invertible.
func combineLevel(x *Xfm, trees [numTrees]*Decomp, lv int) DTLevel {
	var out DTLevel
	for bi := 0; bi < 3; bi++ {
		p := bandOf(trees[TreeAA], lv, bi)
		q := bandOf(trees[TreeBB], lv, bi)
		r := bandOf(trees[TreeAB], lv, bi)
		s := bandOf(trees[TreeBA], lv, bi)
		z1 := NewComplexBand(p.W, p.H)
		z2 := NewComplexBand(p.W, p.H)
		for i := range p.Pix {
			pp, qq, rr, ss := p.Pix[i], q.Pix[i], r.Pix[i], s.Pix[i]
			z1.Re[i] = (pp - qq) * invSqrt2
			z1.Im[i] = (rr + ss) * invSqrt2
			z2.Re[i] = (pp + qq) * invSqrt2
			z2.Im[i] = (ss - rr) * invSqrt2
		}
		x.chargeCPU(4 * len(p.Pix))
		out.Bands[bi] = z1
		out.Bands[5-bi] = z2
	}
	return out
}

// distributeLevel applies c2q, the exact inverse of combineLevel, writing
// the (possibly fused) complex coefficients back into the four trees.
func distributeLevel(x *Xfm, trees [numTrees]*Decomp, l DTLevel, lv int) {
	for bi := 0; bi < 3; bi++ {
		z1 := l.Bands[bi]
		z2 := l.Bands[5-bi]
		p := bandOf(trees[TreeAA], lv, bi)
		q := bandOf(trees[TreeBB], lv, bi)
		r := bandOf(trees[TreeAB], lv, bi)
		s := bandOf(trees[TreeBA], lv, bi)
		for i := range p.Pix {
			p.Pix[i] = (z1.Re[i] + z2.Re[i]) * invSqrt2
			q.Pix[i] = (z2.Re[i] - z1.Re[i]) * invSqrt2
			r.Pix[i] = (z1.Im[i] - z2.Im[i]) * invSqrt2
			s.Pix[i] = (z1.Im[i] + z2.Im[i]) * invSqrt2
		}
		x.chargeCPU(4 * len(p.Pix))
	}
}

// bandOf selects detail band bi (0=HL, 1=LH, 2=HH) of a tree level.
func bandOf(d *Decomp, lv, bi int) *frame.Frame {
	switch bi {
	case 0:
		return d.Levels[lv].HL
	case 1:
		return d.Levels[lv].LH
	default:
		return d.Levels[lv].HH
	}
}

package wavelet

import (
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
)

// Tiled 2-D passes: the separable wavelet levels restructured as
// cache-blocked tile tasks over a kernels.Workers pool.
//
// Every pass follows the kernel engine's determinism contract: the
// parallel region performs only pure compute (padding, gathers, the
// engine's bit-identical tile kernels, scatters) into disjoint output
// ranges, and all modeled accounting — the float64 cycle accumulators
// whose addition order matters, and the NEON instruction ledger — is
// replayed sequentially afterwards in exactly the order the sequential
// loops in dwt2d.go charge it. A tiled level is therefore byte-identical
// to a sequential one in pixels, cycles, StageTimes and ledger at any
// worker count.

// fwdRowsTask runs the horizontal analysis pass: row y of src pads into
// per-worker scratch and filters into the left (lo) and right (hi) halves
// of row y of dst.
type fwdRowsTask struct {
	x     *Xfm
	bank  *Bank
	src   *frame.Frame
	dst   *frame.Frame
	w, mw int
}

func (t *fwdRowsTask) Tile(lo, hi, worker int) {
	x := t.x
	ws := &x.ws[worker]
	for y := lo; y < hi; y++ {
		out := t.dst.Row(y)
		px := kernels.PadPeriodic(t.src.Row(y), ws.px.buf)
		x.tile.AnalyzeTile(&t.bank.AL, &t.bank.AH, px, out[:t.mw], out[t.mw:])
	}
}

// forwardRowsTiled dispatches the horizontal analysis pass and replays
// its charges: per row, the pad memcpy then the kernel row.
func (x *Xfm) forwardRowsTiled(bank *Bank, src, dst *frame.Frame, w, h, mw int) {
	ws := x.workspaces(x.W.N())
	for i := range ws {
		ws[i].px.grow(x.pool, w+signal.TapCount)
	}
	x.fwdRows = fwdRowsTask{x: x, bank: bank, src: src, dst: dst, w: w, mw: mw}
	x.W.Run(h, kernels.Grain(h, 8*w, x.W.N()), &x.fwdRows)
	for y := 0; y < h; y++ {
		x.chargeCPU(w + signal.TapCount)
		x.tile.ChargeAnalyzeRow(mw)
	}
}

// fwdColsTask runs the vertical analysis pass: column cx of src gathers
// into per-worker scratch, filters, and scatters into ll/lh (left half)
// or hl/hh (right half).
type fwdColsTask struct {
	x              *Xfm
	bank           *Bank
	src            *frame.Frame
	ll, lh, hl, hh []float32
	w, h, mw, mh   int
}

func (t *fwdColsTask) Tile(lo, hi, worker int) {
	x := t.x
	ws := &x.ws[worker]
	col := ws.col.buf[:t.h]
	cl := ws.lo.buf[:t.mh]
	ch := ws.hi.buf[:t.mh]
	for cx := lo; cx < hi; cx++ {
		for y := 0; y < t.h; y++ {
			col[y] = t.src.Pix[y*t.w+cx]
		}
		px := kernels.PadPeriodic(col, ws.px.buf)
		x.tile.AnalyzeTile(&t.bank.AL, &t.bank.AH, px, cl, ch)
		if cx < t.mw {
			for y := 0; y < t.mh; y++ {
				t.ll[y*t.mw+cx] = cl[y]
				t.lh[y*t.mw+cx] = ch[y]
			}
		} else {
			for y := 0; y < t.mh; y++ {
				t.hl[y*t.mw+cx-t.mw] = cl[y]
				t.hh[y*t.mw+cx-t.mw] = ch[y]
			}
		}
	}
}

// forwardColsTiled dispatches the vertical analysis pass and replays its
// charges: per column, the gather, the pad, the kernel row and the
// scatter.
func (x *Xfm) forwardColsTiled(bank *Bank, src *frame.Frame, ll, lh, hl, hh []float32, w, h, mw, mh int) {
	ws := x.workspaces(x.W.N())
	for i := range ws {
		ws[i].col.grow(x.pool, h)
		ws[i].px.grow(x.pool, h+signal.TapCount)
		ws[i].lo.grow(x.pool, mh)
		ws[i].hi.grow(x.pool, mh)
	}
	x.fwdCols = fwdColsTask{x: x, bank: bank, src: src, ll: ll, lh: lh, hl: hl, hh: hh, w: w, h: h, mw: mw, mh: mh}
	x.W.Run(w, kernels.Grain(w, 8*h, x.W.N()), &x.fwdCols)
	for cx := 0; cx < w; cx++ {
		x.chargeCPU(h)
		x.chargeCPU(h + signal.TapCount)
		x.tile.ChargeAnalyzeRow(mh)
		x.chargeCPU(h)
	}
}

// invColsTask runs one half of the vertical synthesis pass: column cx of
// the lo/hi subband planes gathers, pads, synthesizes and
// delay-compensates into column cx+dstOff of dst.
type invColsTask struct {
	x                    *Xfm
	bank                 *Bank
	loP, hiP             []float32
	dst                  *frame.Frame
	w, h, mw, mh, dstOff int
}

func (t *invColsTask) Tile(lo, hi, worker int) {
	x := t.x
	ws := &x.ws[worker]
	loCol := ws.col.buf[:t.mh]
	hiCol := ws.hiCol.buf[:t.mh]
	y := ws.y.buf[:t.h]
	y2 := ws.y2.buf[:t.h]
	for cx := lo; cx < hi; cx++ {
		for yy := 0; yy < t.mh; yy++ {
			loCol[yy] = t.loP[yy*t.mw+cx]
			hiCol[yy] = t.hiP[yy*t.mw+cx]
		}
		plo := kernels.PadPeriodicPairs(loCol, ws.plo.buf)
		phi := kernels.PadPeriodicPairs(hiCol, ws.phi.buf)
		x.tile.SynthesizeTile(&t.bank.SL, &t.bank.SH, plo, phi, y)
		signal.Rotate(y2, y, t.bank.delay)
		for yy := 0; yy < t.h; yy++ {
			t.dst.Pix[yy*t.w+cx+t.dstOff] = y2[yy]
		}
	}
}

// inverseColsTiled dispatches one half of the vertical synthesis pass and
// replays its charges: per column, the gather, the pads, the kernel row,
// the delay rotation and the scatter — the exact sequence the sequential
// loop charges through Synthesize1D.
func (x *Xfm) inverseColsTiled(bank *Bank, loP, hiP []float32, dst *frame.Frame, w, h, mw, mh, dstOff int) {
	ws := x.workspaces(x.W.N())
	for i := range ws {
		ws[i].col.grow(x.pool, mh)
		ws[i].hiCol.grow(x.pool, mh)
		ws[i].plo.grow(x.pool, mh+signal.SynthesisPad)
		ws[i].phi.grow(x.pool, mh+signal.SynthesisPad)
		ws[i].y.grow(x.pool, h)
		ws[i].y2.grow(x.pool, h)
	}
	x.invCols = invColsTask{x: x, bank: bank, loP: loP, hiP: hiP, dst: dst, w: w, h: h, mw: mw, mh: mh, dstOff: dstOff}
	x.W.Run(mw, kernels.Grain(mw, 16*mh, x.W.N()), &x.invCols)
	for cx := 0; cx < mw; cx++ {
		x.chargeCPU(2 * mh)
		x.chargeCPU(2 * (mh + signal.SynthesisPad))
		x.tile.ChargeSynthesizeRow(mh)
		x.chargeCPU(2 * mh)
		x.chargeCPU(h)
	}
}

// invRowsTask runs the horizontal synthesis pass in place: row y's two
// halves pad into per-worker scratch (consumed before any output is
// written, so in-place is safe), synthesize, delay-compensate and copy
// back over the row.
type invRowsTask struct {
	x     *Xfm
	bank  *Bank
	dst   *frame.Frame
	w, mw int
}

func (t *invRowsTask) Tile(lo, hi, worker int) {
	x := t.x
	ws := &x.ws[worker]
	y := ws.y.buf[:t.w]
	y2 := ws.y2.buf[:t.w]
	for yy := lo; yy < hi; yy++ {
		row := t.dst.Row(yy)
		plo := kernels.PadPeriodicPairs(row[:t.mw], ws.plo.buf)
		phi := kernels.PadPeriodicPairs(row[t.mw:], ws.phi.buf)
		x.tile.SynthesizeTile(&t.bank.SL, &t.bank.SH, plo, phi, y)
		signal.Rotate(y2, y, t.bank.delay)
		copy(row, y2)
	}
}

// inverseRowsTiled dispatches the in-place horizontal synthesis pass and
// replays its charges: per row, the pads, the kernel row, the rotation
// and the write-back memcpy.
func (x *Xfm) inverseRowsTiled(bank *Bank, dst *frame.Frame, w, h, mw int) {
	ws := x.workspaces(x.W.N())
	for i := range ws {
		ws[i].plo.grow(x.pool, mw+signal.SynthesisPad)
		ws[i].phi.grow(x.pool, mw+signal.SynthesisPad)
		ws[i].y.grow(x.pool, w)
		ws[i].y2.grow(x.pool, w)
	}
	x.invRows = invRowsTask{x: x, bank: bank, dst: dst, w: w, mw: mw}
	x.W.Run(h, kernels.Grain(h, 8*w, x.W.N()), &x.invRows)
	for y := 0; y < h; y++ {
		x.chargeCPU(2 * (mw + signal.SynthesisPad))
		x.tile.ChargeSynthesizeRow(mw)
		x.chargeCPU(w)
		x.chargeCPU(w)
	}
}

// Pixel-map tasks: the DT-CWT's engine-independent structure loops
// (tree combination, distribution, reconstruction averaging). Each index
// is computed independently with the same expressions as the sequential
// loops, and the single chargeCPU those loops make sits outside the
// parallel region, so these tile for every engine — including ones whose
// filter kernels cannot.

// q2cTask applies the four-real-to-two-complex combination per pixel.
type q2cTask struct {
	p, q, r, s             []float32
	z1re, z1im, z2re, z2im []float32
}

func (t *q2cTask) Tile(lo, hi, _ int) {
	p, q, r, s := t.p, t.q, t.r, t.s
	z1re, z1im, z2re, z2im := t.z1re, t.z1im, t.z2re, t.z2im
	for i := lo; i < hi; i++ {
		pp, qq, rr, ss := p[i], q[i], r[i], s[i]
		z1re[i] = (pp - qq) * invSqrt2
		z1im[i] = (rr + ss) * invSqrt2
		z2re[i] = (pp + qq) * invSqrt2
		z2im[i] = (ss - rr) * invSqrt2
	}
}

// c2qTask applies the exact inverse combination per pixel.
type c2qTask struct {
	z1re, z1im, z2re, z2im []float32
	p, q, r, s             []float32
}

func (t *c2qTask) Tile(lo, hi, _ int) {
	z1re, z1im, z2re, z2im := t.z1re, t.z1im, t.z2re, t.z2im
	p, q, r, s := t.p, t.q, t.r, t.s
	for i := lo; i < hi; i++ {
		p[i] = (z1re[i] + z2re[i]) * invSqrt2
		q[i] = (z2re[i] - z1re[i]) * invSqrt2
		r[i] = (z1im[i] - z2im[i]) * invSqrt2
		s[i] = (z1im[i] + z2im[i]) * invSqrt2
	}
}

// accTask accumulates src into dst per pixel.
type accTask struct {
	dst, src []float32
}

func (t *accTask) Tile(lo, hi, _ int) {
	dst, src := t.dst, t.src
	for i := lo; i < hi; i++ {
		dst[i] += src[i]
	}
}

// scaleTask scales dst by the tree-average factor per pixel.
type scaleTask struct {
	dst []float32
}

func (t *scaleTask) Tile(lo, hi, _ int) {
	dst := t.dst
	for i := lo; i < hi; i++ {
		dst[i] *= 1.0 / numTrees
	}
}

package wavelet

import (
	"errors"
	"fmt"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
)

// Operator-fused transform paths. The fused forward runs the visible and
// infrared DT-CWTs as one interleaved tiled traversal: the level-1 row
// passes are computed once per row tree (the two tree combinations sharing
// a row tree repeat them verbatim in the unfused cascade), the level-1
// column passes compute both column trees from a single gather+pad, and
// every dispatch drives both streams. The fused inverse consumes quad
// (tree) coefficients written directly by the fused rule kernel, skipping
// the c2q distribution pass, and folds the four-tree average into the last
// accumulation.
//
// Determinism follows the kernel engine's contract: the traversals above
// are pure compute built from the same charge-free tile kernels and the
// same per-element expressions as the unfused path, while every modeled
// cycle — float64 accumulators whose addition order matters — is replayed
// sequentially afterwards in exactly the order the unfused cascade charges
// it. Pixels, StageTimes and the energy ledger are therefore bit-identical
// to the unfused path at every worker count.

// pairTask interleaves two equally-shaped tasks in one parallel dispatch:
// each tile runs the first body then the second over the same index range,
// so one traversal of the loop geometry drives both streams.
type pairTask struct {
	a, b kernels.Task
}

func (t *pairTask) Tile(lo, hi, worker int) {
	t.a.Tile(lo, hi, worker)
	t.b.Tile(lo, hi, worker)
}

// colBlock is the column-block width of the fused dual-tree vertical
// pass: enough columns per block that the gather reads and the scatter
// writes sweep whole cache lines of the row-major planes, while the block
// staging (one input block plus four subband blocks) stays cache-resident.
const colBlock = 8

// fwdColsDualTask runs the vertical analysis of both column trees from a
// single column gather: a block of columns of the shared row-pass output
// gathers once (line-sequential in the source), each column pads once and
// filters through both trees' banks into block staging, and a blocked
// scatter writes the four subband planes line-sequentially — the same
// per-column filter inputs and outputs as the column-at-a-time form, so
// the coefficients are bit-identical; only the data movement is blocked.
type fwdColsDualTask struct {
	x                  *Xfm
	bankA, bankB       *Bank
	src                *frame.Frame
	llA, lhA, hlA, hhA []float32
	llB, lhB, hlB, hhB []float32
	w, h, mw, mh       int
}

func (t *fwdColsDualTask) Tile(lo, hi, worker int) {
	// Split the range at the lowpass/highpass column boundary so every
	// block scatters into one pair of planes per bank.
	if lo < t.mw {
		end := hi
		if end > t.mw {
			end = t.mw
		}
		t.tileHalf(lo, end, worker, t.llA, t.lhA, t.llB, t.lhB, 0)
	}
	if hi > t.mw {
		start := lo
		if start < t.mw {
			start = t.mw
		}
		t.tileHalf(start, hi, worker, t.hlA, t.hhA, t.hlB, t.hhB, t.mw)
	}
}

// tileHalf analyzes columns [lo, hi) — all on one side of the subband
// split — in blocks, scattering bank A's lowpass/highpass outputs into
// loA/hiA and bank B's into loB/hiB at column cx-off.
func (t *fwdColsDualTask) tileHalf(lo, hi, worker int, loA, hiA, loB, hiB []float32, off int) {
	x := t.x
	ws := &x.ws[worker]
	w, h, mw, mh := t.w, t.h, t.mw, t.mh
	blk := ws.colBlk.buf[:colBlock*h]
	bLoA := ws.bLoA.buf[:colBlock*mh]
	bHiA := ws.bHiA.buf[:colBlock*mh]
	bLoB := ws.bLoB.buf[:colBlock*mh]
	bHiB := ws.bHiB.buf[:colBlock*mh]
	for cx0 := lo; cx0 < hi; cx0 += colBlock {
		nb := hi - cx0
		if nb > colBlock {
			nb = colBlock
		}
		for y := 0; y < h; y++ {
			row := t.src.Pix[y*w+cx0 : y*w+cx0+nb]
			for j := 0; j < nb; j++ {
				blk[j*h+y] = row[j]
			}
		}
		for j := 0; j < nb; j++ {
			px := kernels.PadPeriodic(blk[j*h:(j+1)*h], ws.px.buf)
			x.tile.AnalyzeTile(&t.bankA.AL, &t.bankA.AH, px, bLoA[j*mh:(j+1)*mh], bHiA[j*mh:(j+1)*mh])
			x.tile.AnalyzeTile(&t.bankB.AL, &t.bankB.AH, px, bLoB[j*mh:(j+1)*mh], bHiB[j*mh:(j+1)*mh])
		}
		for y := 0; y < mh; y++ {
			base := y*mw + cx0 - off
			dLoA := loA[base : base+nb]
			dHiA := hiA[base : base+nb]
			dLoB := loB[base : base+nb]
			dHiB := hiB[base : base+nb]
			for j := 0; j < nb; j++ {
				dLoA[j] = bLoA[j*mh+y]
				dHiA[j] = bHiA[j*mh+y]
				dLoB[j] = bLoB[j*mh+y]
				dHiB[j] = bHiB[j*mh+y]
			}
		}
	}
}

// fwdColsBlkTask is the fused deep-level vertical pass: fwdColsTask's
// geometry with fwdColsDualTask's blocked data movement — one bank, one
// source, columns gathered and subbands scattered a cache-line-wide block
// at a time. It exists only on the fused path; the unfused tiled cascade
// keeps the column-at-a-time reference form.
type fwdColsBlkTask struct {
	x              *Xfm
	bank           *Bank
	src            *frame.Frame
	ll, lh, hl, hh []float32
	w, h, mw, mh   int
}

func (t *fwdColsBlkTask) Tile(lo, hi, worker int) {
	if lo < t.mw {
		end := hi
		if end > t.mw {
			end = t.mw
		}
		t.tileHalf(lo, end, worker, t.ll, t.lh, 0)
	}
	if hi > t.mw {
		start := lo
		if start < t.mw {
			start = t.mw
		}
		t.tileHalf(start, hi, worker, t.hl, t.hh, t.mw)
	}
}

func (t *fwdColsBlkTask) tileHalf(lo, hi, worker int, dstLo, dstHi []float32, off int) {
	x := t.x
	ws := &x.ws[worker]
	w, h, mw, mh := t.w, t.h, t.mw, t.mh
	blk := ws.colBlk.buf[:colBlock*h]
	bLo := ws.bLoA.buf[:colBlock*mh]
	bHi := ws.bHiA.buf[:colBlock*mh]
	for cx0 := lo; cx0 < hi; cx0 += colBlock {
		nb := hi - cx0
		if nb > colBlock {
			nb = colBlock
		}
		for y := 0; y < h; y++ {
			row := t.src.Pix[y*w+cx0 : y*w+cx0+nb]
			for j := 0; j < nb; j++ {
				blk[j*h+y] = row[j]
			}
		}
		for j := 0; j < nb; j++ {
			px := kernels.PadPeriodic(blk[j*h:(j+1)*h], ws.px.buf)
			x.tile.AnalyzeTile(&t.bank.AL, &t.bank.AH, px, bLo[j*mh:(j+1)*mh], bHi[j*mh:(j+1)*mh])
		}
		for y := 0; y < mh; y++ {
			base := y*mw + cx0 - off
			dLo := dstLo[base : base+nb]
			dHi := dstHi[base : base+nb]
			for j := 0; j < nb; j++ {
				dLo[j] = bLo[j*mh+y]
				dHi[j] = bHi[j*mh+y]
			}
		}
	}
}

// invColsBlkTask is one half of the fused vertical synthesis pass with
// blocked data movement: a block of lo/hi subband columns gathers
// line-sequentially, each column pads, synthesizes and delay-compensates
// exactly as invColsTask does, and the reconstructed block scatters
// line-sequentially into dst. Fused path only; the unfused tiled cascade
// keeps the column-at-a-time reference form.
type invColsBlkTask struct {
	x                    *Xfm
	bank                 *Bank
	loP, hiP             []float32
	dst                  *frame.Frame
	w, h, mw, mh, dstOff int
}

func (t *invColsBlkTask) Tile(lo, hi, worker int) {
	x := t.x
	ws := &x.ws[worker]
	w, h, mw, mh := t.w, t.h, t.mw, t.mh
	loBlk := ws.colBlk.buf[:colBlock*mh]
	hiBlk := ws.bLoA.buf[:colBlock*mh]
	yBlk := ws.bHiA.buf[:colBlock*h]
	y := ws.y.buf[:h]
	for cx0 := lo; cx0 < hi; cx0 += colBlock {
		nb := hi - cx0
		if nb > colBlock {
			nb = colBlock
		}
		for yy := 0; yy < mh; yy++ {
			base := yy*mw + cx0
			lrow := t.loP[base : base+nb]
			hrow := t.hiP[base : base+nb]
			for j := 0; j < nb; j++ {
				loBlk[j*mh+yy] = lrow[j]
				hiBlk[j*mh+yy] = hrow[j]
			}
		}
		for j := 0; j < nb; j++ {
			plo := kernels.PadPeriodicPairs(loBlk[j*mh:(j+1)*mh], ws.plo.buf)
			phi := kernels.PadPeriodicPairs(hiBlk[j*mh:(j+1)*mh], ws.phi.buf)
			x.tile.SynthesizeTile(&t.bank.SL, &t.bank.SH, plo, phi, y)
			signal.Rotate(yBlk[j*h:(j+1)*h], y, t.bank.delay)
		}
		for yy := 0; yy < h; yy++ {
			base := yy*w + cx0 + t.dstOff
			drow := t.dst.Pix[base : base+nb]
			for j := 0; j < nb; j++ {
				drow[j] = yBlk[j*h+yy]
			}
		}
	}
}

// inverseColsBlk dispatches the blocked half-pass and replays the exact
// charge sequence inverseColsTiled (and the sequential loop before it)
// issues per column.
func (x *Xfm) inverseColsBlk(bank *Bank, loP, hiP []float32, dst *frame.Frame, w, h, mw, mh, dstOff int) {
	ws := x.workspaces(x.W.N())
	for i := range ws {
		ws[i].colBlk.grow(x.pool, colBlock*mh)
		ws[i].bLoA.grow(x.pool, colBlock*mh)
		ws[i].bHiA.grow(x.pool, colBlock*h)
		ws[i].plo.grow(x.pool, mh+signal.SynthesisPad)
		ws[i].phi.grow(x.pool, mh+signal.SynthesisPad)
		ws[i].y.grow(x.pool, h)
	}
	x.invColsK = invColsBlkTask{x: x, bank: bank, loP: loP, hiP: hiP, dst: dst, w: w, h: h, mw: mw, mh: mh, dstOff: dstOff}
	x.W.Run(mw, kernels.Grain(mw, 16*mh, x.W.N()), &x.invColsK)
	for cx := 0; cx < mw; cx++ {
		x.chargeCPU(2 * mh)
		x.chargeCPU(2 * (mh + signal.SynthesisPad))
		x.tile.ChargeSynthesizeRow(mh)
		x.chargeCPU(2 * mh)
		x.chargeCPU(h)
	}
}

// inverse2DFused reconstructs one tree with the blocked synthesis passes,
// bit-identical — pixels and charges — to inverse2DPooled.
func inverse2DFused(x *Xfm, d *Decomp, pool *bufpool.Pool) (*frame.Frame, error) {
	if x.tile == nil {
		return inverse2DPooled(x, d, pool)
	}
	if len(d.Levels) == 0 || d.LL == nil {
		return nil, errors.New("wavelet.Inverse2D: empty decomposition")
	}
	cur := d.LL
	var curOwned *frame.Frame
	for lv := len(d.Levels) - 1; lv >= 0; lv-- {
		b := d.Levels[lv]
		if !cur.SameSize(b.HL) || !cur.SameSize(b.LH) || !cur.SameSize(b.HH) {
			if curOwned != nil {
				curOwned.Release()
			}
			return nil, fmt.Errorf("wavelet.Inverse2D: level %d subband size mismatch", lv+1)
		}
		mw, mh := cur.W, cur.H
		w, h := 2*mw, 2*mh
		rowOut, err := pool.Get(w, h)
		if err != nil {
			if curOwned != nil {
				curOwned.Release()
			}
			return nil, err
		}
		x.inverseColsBlk(d.ColBanks[lv], cur.Pix, b.LH.Pix, rowOut, w, h, mw, mh, 0)
		x.inverseColsBlk(d.ColBanks[lv], b.HL.Pix, b.HH.Pix, rowOut, w, h, mw, mh, mw)
		x.inverseRowsTiled(d.RowBanks[lv], rowOut, w, h, mw)
		next := rowOut
		if orig := d.sizes[lv]; orig.w != w || orig.h != h {
			cropped, err := pool.Get(orig.w, orig.h)
			if err != nil {
				rowOut.Release()
				if curOwned != nil {
					curOwned.Release()
				}
				return nil, err
			}
			for r := 0; r < orig.h; r++ {
				copy(cropped.Row(r), rowOut.Pix[r*w:r*w+orig.w])
			}
			rowOut.Release()
			next = cropped
		}
		if curOwned != nil {
			curOwned.Release()
		}
		curOwned = next
		cur = next
	}
	return cur, nil
}

// accScaleTask folds the four-tree average into the final accumulation:
// per element the same rounded float32 add then rounded multiply the
// separate accumulate and scale passes perform, in one traversal.
type accScaleTask struct {
	dst, src []float32
}

func (t *accScaleTask) Tile(lo, hi, _ int) {
	dst, src := t.dst, t.src
	for i := lo; i < hi; i++ {
		dst[i] = (dst[i] + src[i]) * (1.0 / numTrees)
	}
}

// comboIndex maps (row tree, column tree) letters to the tree combination
// index — the inverse of comboTrees.
func comboIndex(rowTree, colTree byte) int {
	switch {
	case rowTree == 'a' && colTree == 'a':
		return TreeAA
	case rowTree == 'a':
		return TreeAB
	case colTree == 'a':
		return TreeBA
	default:
		return TreeBB
	}
}

// TreeBand exposes detail band bi (0=HL, 1=LH, 2=HH) of tree combination c
// at level lv — the quad (tree) coefficient planes the fused
// combine+rule+distribute kernels read and write directly. In the q2c
// convention, band position p is TreeAA, q is TreeBB, r is TreeAB and s is
// TreeBA.
func (p *DTPyramid) TreeBand(c, lv, bi int) *frame.Frame {
	return bandOf(p.trees[c], lv, bi)
}

// shapedQuad reports whether the pyramid's quad planes (trees and
// residuals) already match the geometry; the complex band planes may be
// present or elided — both are valid fused-path workspaces.
func (p *DTPyramid) shapedQuad(w, h, levels int) bool {
	if p.W != w || p.H != h || len(p.Levels) != levels {
		return false
	}
	for c := 0; c < numTrees; c++ {
		if p.trees[c] == nil || p.trees[c].LL == nil || len(p.trees[c].Levels) != levels {
			return false
		}
	}
	return true
}

// ShapeQuadPyramid (re)shapes p with quad (tree) planes and lowpass
// residuals only, eliding the six complex band planes per level that the
// fused combine+rule+distribute path never materializes. The shaped
// pyramid carries full inversion bookkeeping, so it is a valid destination
// for the fused rule kernels and for InverseFused.
func (t *DTCWT) ShapeQuadPyramid(p *DTPyramid, w, h, levels int) error {
	if levels < 1 || levels > MaxLevels(w, h) {
		return fmt.Errorf("%w: levels=%d for %dx%d", ErrBadLevels, levels, w, h)
	}
	if p.shapedQuad(w, h, levels) {
		for c := 0; c < numTrees; c++ {
			rowTree, colTree := comboTrees(c)
			p.trees[c].RowBanks = t.treeBanks(rowTree, levels)
			p.trees[c].ColBanks = t.treeBanks(colTree, levels)
		}
		return nil
	}
	p.Release()
	pool := t.poolOr()
	p.W, p.H = w, h
	if cap(p.Levels) >= levels {
		p.Levels = p.Levels[:levels]
	} else {
		p.Levels = make([]DTLevel, levels)
	}
	for lv := range p.Levels {
		p.Levels[lv] = DTLevel{}
	}
	for c := 0; c < numTrees; c++ {
		rowTree, colTree := comboTrees(c)
		if p.trees[c] == nil {
			p.trees[c] = &Decomp{}
		}
		if err := shapeDecomp(p.trees[c], t.treeBanks(rowTree, levels), t.treeBanks(colTree, levels), w, h, levels, pool); err != nil {
			p.Release()
			return err
		}
		p.LLs[c] = p.trees[c].LL
	}
	return nil
}

// ForwardPairInto computes the DT-CWTs of vis into pa and ir into pb as
// one fused dual-stream traversal. combine selects whether the complex
// band planes are materialized (q2c) as the unfused forward does; the
// fused rule path passes false and reads the quad planes directly. The
// results — coefficients and every modeled charge — are bit-identical to
// two sequential ForwardInto calls (vis first).
func (t *DTCWT) ForwardPairInto(pa, pb *DTPyramid, vis, ir *frame.Frame, levels int, combine bool) error {
	if levels < 1 || levels > MaxLevels(vis.W, vis.H) {
		return fmt.Errorf("%w: levels=%d for %dx%d", ErrBadLevels, levels, vis.W, vis.H)
	}
	if !vis.SameSize(ir) {
		return errors.New("wavelet.ForwardPairInto: source sizes differ")
	}
	x := t.X
	if x.tile == nil {
		// No tile kernels (the planner vetoes this shape; kept as a safe
		// fallback): run the unfused pair.
		if _, err := t.ForwardInto(pa, vis, levels); err != nil {
			return err
		}
		_, err := t.ForwardInto(pb, ir, levels)
		return err
	}
	var err error
	if combine {
		err = t.ShapePyramid(pa, vis.W, vis.H, levels)
		if err == nil {
			err = t.ShapePyramid(pb, vis.W, vis.H, levels)
		}
	} else {
		err = t.ShapeQuadPyramid(pa, vis.W, vis.H, levels)
		if err == nil {
			err = t.ShapeQuadPyramid(pb, vis.W, vis.H, levels)
		}
	}
	if err != nil {
		return err
	}
	if err := t.forwardPairCompute(pa, pb, vis, ir, levels); err != nil {
		return err
	}
	if combine {
		for lv := 0; lv < levels; lv++ {
			combineLevelCompute(x, pa.trees, lv, &pa.Levels[lv])
		}
		for lv := 0; lv < levels; lv++ {
			combineLevelCompute(x, pb.trees, lv, &pb.Levels[lv])
		}
	}
	// Replay the modeled charges sequentially in exactly the order two
	// unfused ForwardInto calls issue them: the complete visible
	// transform's, then the infrared's. The q2c combine charges replay
	// regardless of where the combine compute runs — when the rule fusion
	// absorbs it, the modeled cost keeps its Forward-stage attribution.
	t.replayForwardCharges(vis.W, vis.H, levels)
	t.replayForwardCharges(vis.W, vis.H, levels)
	return nil
}

// forwardPairCompute is the charge-free fused analysis cascade.
func (t *DTCWT) forwardPairCompute(pa, pb *DTPyramid, vis, ir *frame.Frame, levels int) error {
	x := t.X
	pool := t.poolOr()

	// Shared level-1 pads (odd inputs only) serve all four trees of a
	// stream; the unfused cascade re-pads per tree.
	pV, ownV, err := padEvenCompute(vis, pool)
	if err != nil {
		return err
	}
	pI, ownI, err := padEvenCompute(ir, pool)
	if err != nil {
		if ownV != nil {
			ownV.Release()
		}
		return err
	}
	releasePads := func() {
		if ownV != nil {
			ownV.Release()
			ownV = nil
		}
		if ownI != nil {
			ownI.Release()
			ownI = nil
		}
	}
	w, h := pV.W, pV.H
	mw, mh := w/2, h/2

	// Per-(tree, stream) level-1 lowpass planes, consumed by the deep
	// cascade (levels >= 2) or written directly to the trees' residuals.
	var llV, llI [numTrees]*frame.Frame
	var ownedV, ownedI [numTrees]*frame.Frame
	fail := func(err error) error {
		releasePads()
		for c := 0; c < numTrees; c++ {
			if ownedV[c] != nil {
				ownedV[c].Release()
			}
			if ownedI[c] != nil {
				ownedI[c].Release()
			}
		}
		return err
	}
	llDst := func(d *Decomp, owned *[numTrees]*frame.Frame, set *[numTrees]*frame.Frame, c int) (*frame.Frame, error) {
		if levels == 1 {
			return d.LL, nil
		}
		f, err := pool.Get(mw, mh)
		if err != nil {
			return nil, err
		}
		owned[c], set[c] = f, f
		return f, nil
	}

	// Level 1: one row pass per (row tree, stream); the two tree
	// combinations sharing a row tree consume the same row-pass output,
	// and one column dispatch computes both column trees per stream.
	for _, rt := range [2]byte{'a', 'b'} {
		rowBank := t.treeBanks(rt, levels)[0]
		rowV, err := pool.Get(w, h)
		if err != nil {
			return fail(err)
		}
		rowI, err := pool.Get(w, h)
		if err != nil {
			rowV.Release()
			return fail(err)
		}
		ws := x.workspaces(x.W.N())
		for i := range ws {
			ws[i].px.grow(x.pool, w+signal.TapCount)
		}
		x.fwdRows = fwdRowsTask{x: x, bank: rowBank, src: pV, dst: rowV, w: w, mw: mw}
		x.fwdRowsB = fwdRowsTask{x: x, bank: rowBank, src: pI, dst: rowI, w: w, mw: mw}
		x.pair = pairTask{a: &x.fwdRows, b: &x.fwdRowsB}
		x.W.Run(h, kernels.Grain(h, 16*w, x.W.N()), &x.pair)

		cA, cB := comboIndex(rt, 'a'), comboIndex(rt, 'b')
		colBankA := t.treeBanks('a', levels)[0]
		colBankB := t.treeBanks('b', levels)[0]
		llAv, err := llDst(pa.trees[cA], &ownedV, &llV, cA)
		if err == nil {
			var e2 error
			if llBv, e2 := llDst(pa.trees[cB], &ownedV, &llV, cB); e2 == nil {
				var llAi, llBi *frame.Frame
				if llAi, e2 = llDst(pb.trees[cA], &ownedI, &llI, cA); e2 == nil {
					if llBi, e2 = llDst(pb.trees[cB], &ownedI, &llI, cB); e2 == nil {
						for i := range ws {
							ws[i].px.grow(x.pool, h+signal.TapCount)
							ws[i].colBlk.grow(x.pool, colBlock*h)
							ws[i].bLoA.grow(x.pool, colBlock*mh)
							ws[i].bHiA.grow(x.pool, colBlock*mh)
							ws[i].bLoB.grow(x.pool, colBlock*mh)
							ws[i].bHiB.grow(x.pool, colBlock*mh)
						}
						la, lb := &pa.trees[cA].Levels[0], &pa.trees[cB].Levels[0]
						x.fwdColsD = fwdColsDualTask{x: x, bankA: colBankA, bankB: colBankB, src: rowV,
							llA: llAv.Pix, lhA: la.LH.Pix, hlA: la.HL.Pix, hhA: la.HH.Pix,
							llB: llBv.Pix, lhB: lb.LH.Pix, hlB: lb.HL.Pix, hhB: lb.HH.Pix,
							w: w, h: h, mw: mw, mh: mh}
						la, lb = &pb.trees[cA].Levels[0], &pb.trees[cB].Levels[0]
						x.fwdColsDB = fwdColsDualTask{x: x, bankA: colBankA, bankB: colBankB, src: rowI,
							llA: llAi.Pix, lhA: la.LH.Pix, hlA: la.HL.Pix, hhA: la.HH.Pix,
							llB: llBi.Pix, lhB: lb.LH.Pix, hlB: lb.HL.Pix, hhB: lb.HH.Pix,
							w: w, h: h, mw: mw, mh: mh}
						x.pair = pairTask{a: &x.fwdColsD, b: &x.fwdColsDB}
						x.W.Run(w, kernels.Grain(w, 32*h, x.W.N()), &x.pair)
					}
				}
			}
			err = e2
		}
		rowV.Release()
		rowI.Release()
		if err != nil {
			return fail(err)
		}
	}
	releasePads()

	// Deep levels, tree outer (no cross-tree sharing remains: each tree
	// cascades its own lowpass chain), both streams per dispatch.
	for c := 0; c < numTrees; c++ {
		da, db := pa.trees[c], pb.trees[c]
		curV, curOwnV := llV[c], ownedV[c]
		curI, curOwnI := llI[c], ownedI[c]
		ownedV[c], ownedI[c] = nil, nil
		releaseCur := func() {
			if curOwnV != nil {
				curOwnV.Release()
				curOwnV = nil
			}
			if curOwnI != nil {
				curOwnI.Release()
				curOwnI = nil
			}
		}
		for lv := 1; lv < levels; lv++ {
			pV2, ownV2, err := padEvenCompute(curV, pool)
			if err != nil {
				releaseCur()
				return fail(err)
			}
			pI2, ownI2, err := padEvenCompute(curI, pool)
			if err != nil {
				if ownV2 != nil {
					ownV2.Release()
				}
				releaseCur()
				return fail(err)
			}
			w2, h2 := pV2.W, pV2.H
			mw2, mh2 := w2/2, h2/2
			step := func() (nextV, nextI, nextOwnV, nextOwnI *frame.Frame, err error) {
				if lv == levels-1 {
					nextV, nextI = da.LL, db.LL
				} else {
					if nextV, err = pool.Get(mw2, mh2); err != nil {
						return nil, nil, nil, nil, err
					}
					if nextI, err = pool.Get(mw2, mh2); err != nil {
						nextV.Release()
						return nil, nil, nil, nil, err
					}
					nextOwnV, nextOwnI = nextV, nextI
				}
				rowV, err := pool.Get(w2, h2)
				if err != nil {
					if nextOwnV != nil {
						nextOwnV.Release()
						nextOwnI.Release()
					}
					return nil, nil, nil, nil, err
				}
				rowI, err := pool.Get(w2, h2)
				if err != nil {
					rowV.Release()
					if nextOwnV != nil {
						nextOwnV.Release()
						nextOwnI.Release()
					}
					return nil, nil, nil, nil, err
				}
				ws := x.workspaces(x.W.N())
				for i := range ws {
					ws[i].px.grow(x.pool, w2+signal.TapCount)
				}
				x.fwdRows = fwdRowsTask{x: x, bank: da.RowBanks[lv], src: pV2, dst: rowV, w: w2, mw: mw2}
				x.fwdRowsB = fwdRowsTask{x: x, bank: db.RowBanks[lv], src: pI2, dst: rowI, w: w2, mw: mw2}
				x.pair = pairTask{a: &x.fwdRows, b: &x.fwdRowsB}
				x.W.Run(h2, kernels.Grain(h2, 16*w2, x.W.N()), &x.pair)
				for i := range ws {
					ws[i].px.grow(x.pool, h2+signal.TapCount)
					ws[i].colBlk.grow(x.pool, colBlock*h2)
					ws[i].bLoA.grow(x.pool, colBlock*mh2)
					ws[i].bHiA.grow(x.pool, colBlock*mh2)
				}
				ba, bb := da.Levels[lv], db.Levels[lv]
				x.fwdColsK = fwdColsBlkTask{x: x, bank: da.ColBanks[lv], src: rowV,
					ll: nextV.Pix, lh: ba.LH.Pix, hl: ba.HL.Pix, hh: ba.HH.Pix,
					w: w2, h: h2, mw: mw2, mh: mh2}
				x.fwdColsKB = fwdColsBlkTask{x: x, bank: db.ColBanks[lv], src: rowI,
					ll: nextI.Pix, lh: bb.LH.Pix, hl: bb.HL.Pix, hh: bb.HH.Pix,
					w: w2, h: h2, mw: mw2, mh: mh2}
				x.pair = pairTask{a: &x.fwdColsK, b: &x.fwdColsKB}
				x.W.Run(w2, kernels.Grain(w2, 16*h2, x.W.N()), &x.pair)
				rowV.Release()
				rowI.Release()
				return nextV, nextI, nextOwnV, nextOwnI, nil
			}
			nextV, nextI, nextOwnV, nextOwnI, err := step()
			if ownV2 != nil {
				ownV2.Release()
			}
			if ownI2 != nil {
				ownI2.Release()
			}
			if err != nil {
				releaseCur()
				return fail(err)
			}
			releaseCur()
			curV, curOwnV = nextV, nextOwnV
			curI, curOwnI = nextI, nextOwnI
		}
		releaseCur()
	}
	return nil
}

// replayForwardCharges re-issues one stream's complete forward-transform
// charge sequence — per tree and level: the odd-size pad, the per-row and
// per-column structure and kernel charges; then the per-level q2c combine
// charges — in exactly the order (and with exactly the per-item replay
// loops) the unfused cascade performs them, so the float64 cycle
// accumulators and the instruction ledger land bit-identically.
func (t *DTCWT) replayForwardCharges(w, h, levels int) {
	x := t.X
	for c := 0; c < numTrees; c++ {
		_ = c
		cw, ch := w, h
		for lv := 0; lv < levels; lv++ {
			pw, ph, mw, mh := levelGeom(cw, ch)
			if pw != cw || ph != ch {
				x.chargeCPU(pw * ph)
			}
			for y := 0; y < ph; y++ {
				x.chargeCPU(pw + signal.TapCount)
				x.tile.ChargeAnalyzeRow(mw)
			}
			for cx := 0; cx < pw; cx++ {
				x.chargeCPU(ph)
				x.chargeCPU(ph + signal.TapCount)
				x.tile.ChargeAnalyzeRow(mh)
				x.chargeCPU(ph)
			}
			cw, ch = mw, mh
		}
	}
	cw, ch := w, h
	for lv := 0; lv < levels; lv++ {
		_, _, mw, mh := levelGeom(cw, ch)
		n := mw * mh
		for bi := 0; bi < 3; bi++ {
			x.chargeCPU(4 * n)
		}
		cw, ch = mw, mh
	}
}

// InverseFused reconstructs the frame from a pyramid whose fused
// coefficients already sit in quad (tree) layout — the fused rule kernel's
// output — skipping the c2q distribution compute while replaying its
// modeled charges, and folding the four-tree average into the final
// accumulation pass. Bit-identical to Inverse over a distributed pyramid.
func (t *DTCWT) InverseFused(p *DTPyramid) (*frame.Frame, error) {
	if p.NumLevels() == 0 {
		return nil, errors.New("wavelet.DTCWT: empty pyramid")
	}
	x := t.X
	pool := t.poolOr()
	for lv := range p.Levels {
		n := len(bandOf(p.trees[TreeAA], lv, 0).Pix)
		for bi := 0; bi < 3; bi++ {
			x.chargeCPU(4 * n)
		}
	}
	var acc *frame.Frame
	for c := 0; c < numTrees; c++ {
		p.trees[c].LL = p.LLs[c]
		rec, err := inverse2DFused(x, p.trees[c], pool)
		if err != nil {
			if acc != nil {
				acc.Release()
			}
			return nil, err
		}
		if acc == nil {
			acc = rec
			continue
		}
		if !acc.SameSize(rec) {
			acc.Release()
			rec.Release()
			return nil, errors.New("wavelet.DTCWT: tree reconstruction size mismatch")
		}
		if c < numTrees-1 {
			x.pixAcc = accTask{dst: acc.Pix, src: rec.Pix}
			x.W.Run(len(acc.Pix), kernels.Grain(len(acc.Pix), 8, x.W.N()), &x.pixAcc)
		} else {
			x.pixAccScale = accScaleTask{dst: acc.Pix, src: rec.Pix}
			x.W.Run(len(acc.Pix), kernels.Grain(len(acc.Pix), 8, x.W.N()), &x.pixAccScale)
		}
		rec.Release()
	}
	x.chargeCPU(numTrees * len(acc.Pix))
	return acc, nil
}

// padEvenCompute is padEvenPooled's charge-free body, shared by the fused
// traversal (which replays the pad charge later, per tree, as the unfused
// cascade issues it).
func padEvenCompute(img *frame.Frame, pool *bufpool.Pool) (padded, owned *frame.Frame, err error) {
	if img.W%2 == 0 && img.H%2 == 0 {
		return img, nil, nil
	}
	w, h := img.W+img.W%2, img.H+img.H%2
	p, err := pool.Get(w, h)
	if err != nil {
		return nil, nil, err
	}
	for y := 0; y < h; y++ {
		sy := y
		if sy >= img.H {
			sy = img.H - 1
		}
		dst := p.Row(y)
		copy(dst, img.Row(sy))
		if w > img.W {
			dst[w-1] = dst[img.W-1]
		}
	}
	return p, p, nil
}

// combineLevelCompute is combineLevelInto's charge-free compute body.
func combineLevelCompute(x *Xfm, trees [numTrees]*Decomp, lv int, out *DTLevel) {
	for bi := 0; bi < 3; bi++ {
		p := bandOf(trees[TreeAA], lv, bi)
		q := bandOf(trees[TreeBB], lv, bi)
		r := bandOf(trees[TreeAB], lv, bi)
		s := bandOf(trees[TreeBA], lv, bi)
		z1 := out.Bands[bi]
		z2 := out.Bands[5-bi]
		n := len(p.Pix)
		x.q2c = q2cTask{p: p.Pix, q: q.Pix, r: r.Pix, s: s.Pix,
			z1re: z1.Re, z1im: z1.Im, z2re: z2.Re, z2im: z2.Im}
		x.W.Run(n, kernels.Grain(n, 32, x.W.N()), &x.q2c)
	}
}

package wavelet

import (
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
)

func poolTestFrame(w, h int, seed float32) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32((i*13+int(seed)*71)%251) - 25
	}
	return f
}

// TestForwardIntoReusesAndMatchesForward pins the pooled workspace path
// against the allocating one at the transform level: the same image
// through a reused (uncleared) pyramid must reproduce every coefficient
// bit-for-bit, and the second pass must run entirely on free-list hits.
func TestForwardIntoReusesAndMatchesForward(t *testing.T) {
	pool := bufpool.New(bufpool.Options{})
	dt := NewDTCWTPooled(NewXfm(signal.RefKernel{}), DefaultTreeBanks(), pool)
	plain := NewDTCWT(NewXfm(signal.RefKernel{}), DefaultTreeBanks())

	ws := &DTPyramid{}
	for pass := 0; pass < 3; pass++ {
		img := poolTestFrame(44, 36, float32(3+pass))
		if _, err := dt.ForwardInto(ws, img, 3); err != nil {
			t.Fatal(err)
		}
		want, err := plain.Forward(img, 3)
		if err != nil {
			t.Fatal(err)
		}
		for lv := range want.Levels {
			for bi := range want.Levels[lv].Bands {
				got, exp := ws.Levels[lv].Bands[bi], want.Levels[lv].Bands[bi]
				for i := range exp.Re {
					if got.Re[i] != exp.Re[i] || got.Im[i] != exp.Im[i] {
						t.Fatalf("pass %d level %d band %d coeff %d differs", pass, lv, bi, i)
					}
				}
			}
		}
		for c := range want.LLs {
			for i := range want.LLs[c].Pix {
				if ws.LLs[c].Pix[i] != want.LLs[c].Pix[i] {
					t.Fatalf("pass %d residual %d sample %d differs", pass, c, i)
				}
			}
		}
		// Inverses must agree too, and the pooled reconstruction is owned
		// by us.
		gotRec, err := dt.Inverse(ws)
		if err != nil {
			t.Fatal(err)
		}
		wantRec, err := plain.Inverse(want)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantRec.Pix {
			if gotRec.Pix[i] != wantRec.Pix[i] {
				t.Fatalf("pass %d reconstruction sample %d differs", pass, i)
			}
		}
		gotRec.Release()
	}
	misses := pool.Stats().Misses
	// Another same-geometry pass must not grow the arena at all.
	img := poolTestFrame(44, 36, 99)
	if _, err := dt.ForwardInto(ws, img, 3); err != nil {
		t.Fatal(err)
	}
	if rec, err := dt.Inverse(ws); err != nil {
		t.Fatal(err)
	} else {
		rec.Release()
	}
	if got := pool.Stats().Misses; got != misses {
		t.Fatalf("steady-state pass allocated %d new planes", got-misses)
	}
	ws.Release()
	if err := pool.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestForwardIntoReshapesAcrossGeometries reuses one workspace across
// geometry and depth changes (the DVFS farm's lazy per-point fusers do
// this when streams reconfigure).
func TestForwardIntoReshapesAcrossGeometries(t *testing.T) {
	pool := bufpool.New(bufpool.Options{})
	dt := NewDTCWTPooled(NewXfm(signal.RefKernel{}), DefaultTreeBanks(), pool)
	ws := &DTPyramid{}
	for _, cfg := range []struct{ w, h, lv int }{{32, 24, 2}, {88, 72, 3}, {35, 35, 2}, {88, 72, 3}} {
		img := poolTestFrame(cfg.w, cfg.h, 1)
		if _, err := dt.ForwardInto(ws, img, cfg.lv); err != nil {
			t.Fatalf("%dx%d levels %d: %v", cfg.w, cfg.h, cfg.lv, err)
		}
		rec, err := dt.Inverse(ws)
		if err != nil {
			t.Fatal(err)
		}
		if rec.W != cfg.w || rec.H != cfg.h {
			t.Fatalf("reconstruction %dx%d for %dx%d input", rec.W, rec.H, cfg.w, cfg.h)
		}
		rec.Release()
	}
	ws.Release()
	if err := pool.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestShapePyramidIsValidFusionDestination shapes a pyramid that never ran
// a forward transform and checks it carries the full inversion
// bookkeeping (the fused-workspace contract of FuseInto).
func TestShapePyramidIsValidFusionDestination(t *testing.T) {
	pool := bufpool.New(bufpool.Options{})
	dt := NewDTCWTPooled(NewXfm(signal.RefKernel{}), DefaultTreeBanks(), pool)
	ws := &DTPyramid{}
	if err := dt.ShapePyramid(ws, 40, 40, 3); err != nil {
		t.Fatal(err)
	}
	src, err := dt.Forward(poolTestFrame(40, 40, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Copy src's coefficients into the shaped workspace by hand and invert
	// through it: sizes and banks must already be in place.
	for lv := range src.Levels {
		for bi := range src.Levels[lv].Bands {
			copy(ws.Levels[lv].Bands[bi].Re, src.Levels[lv].Bands[bi].Re)
			copy(ws.Levels[lv].Bands[bi].Im, src.Levels[lv].Bands[bi].Im)
		}
	}
	for c := range src.LLs {
		copy(ws.LLs[c].Pix, src.LLs[c].Pix)
	}
	gotRec, err := dt.Inverse(ws)
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := dt.Inverse(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantRec.Pix {
		if gotRec.Pix[i] != wantRec.Pix[i] {
			t.Fatalf("sample %d differs through shaped workspace", i)
		}
	}
	gotRec.Release()
	wantRec.Release()
	src.Release()
	ws.Release()
	if err := pool.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestErrOverCapSurfacesFromTransform pins the failing-acquire path: a
// transform that cannot fit its working set in a hard-capped arena
// reports ErrOverCap instead of growing past the budget.
func TestErrOverCapSurfacesFromTransform(t *testing.T) {
	pool := bufpool.New(bufpool.Options{CapBytes: 4096})
	dt := NewDTCWTPooled(NewXfm(signal.RefKernel{}), DefaultTreeBanks(), pool)
	if _, err := dt.ForwardInto(&DTPyramid{}, poolTestFrame(88, 72, 2), 3); err == nil {
		t.Fatal("transform fit an impossible budget")
	}
	if err := pool.CheckLeaks(); err != nil {
		t.Fatalf("failed shaping leaked: %v", err)
	}
}

package wavelet

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
)

func TestAlternativeTreeBanksPR(t *testing.T) {
	// The dual tree stays perfectly invertible with the deeper Daubechies-6
	// pair and with Haar at level 1 — filter choice is a free parameter.
	configs := []struct {
		name  string
		banks TreeBanks
	}{
		{"daub6-deep", TreeBanks{
			Level1A: CDF97, Level1B: CDF97.Delayed("cdf-delayed-d6"),
			DeepA: Daub6, DeepB: Daub6Reversed,
		}},
		{"haar-l1", TreeBanks{
			Level1A: Haar, Level1B: Haar.Delayed("haar-delayed"),
			DeepA: Daub4, DeepB: Daub4Reversed,
		}},
		{"legall-l1", TreeBanks{
			Level1A: LeGall53, Level1B: LeGall53.Delayed("legall-delayed"),
			DeepA: Daub4, DeepB: Daub4Reversed,
		}},
	}
	rng := rand.New(rand.NewSource(55))
	for _, cfg := range configs {
		tr := NewDTCWT(NewXfm(signal.RefKernel{}), cfg.banks)
		img := randomFrame(rng, 48, 40)
		p, err := tr.Forward(img, 3)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		rec, err := tr.Inverse(p)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		e, _ := frame.MaxAbsDiff(img, rec)
		if e > 5e-2 {
			t.Errorf("%s: reconstruction error %g", cfg.name, e)
		}
	}
}

func TestHaarDWT2DPR(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	xf := NewXfm(signal.RefKernel{})
	for _, b := range []*Bank{Haar, Daub6, Daub6Reversed} {
		img := randomFrame(rng, 40, 32)
		d, err := Forward2D(xf, banksN(b, 2), banksN(b, 2), img, 2)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rec, err := Inverse2D(xf, d)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := frame.MaxAbsDiff(img, rec)
		if e > 5e-2 {
			t.Errorf("%s: 2-D error %g", b.Name, e)
		}
	}
}

func TestMixedBanksPerDimension(t *testing.T) {
	// Rows and columns may use different banks (as the dual-tree combos
	// do); PR must still hold.
	rng := rand.New(rand.NewSource(57))
	xf := NewXfm(signal.RefKernel{})
	img := randomFrame(rng, 32, 32)
	d, err := Forward2D(xf, banksN(CDF97, 2), banksN(Daub4, 2), img, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Inverse2D(xf, d)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := frame.MaxAbsDiff(img, rec)
	if e > 5e-2 {
		t.Errorf("mixed banks: error %g", e)
	}
}

func TestHaarEnergyConservation(t *testing.T) {
	// Haar is orthonormal; the 2-D transform must conserve energy.
	rng := rand.New(rand.NewSource(58))
	xf := NewXfm(signal.RefKernel{})
	img := randomFrame(rng, 32, 32)
	var ein float64
	for _, v := range img.Pix {
		ein += float64(v) * float64(v)
	}
	d, err := Forward2D(xf, banksN(Haar, 1), banksN(Haar, 1), img, 1)
	if err != nil {
		t.Fatal(err)
	}
	eout := BandEnergy(d.LL)*float64(len(d.LL.Pix)) +
		BandEnergy(d.Levels[0].HL)*float64(len(d.Levels[0].HL.Pix)) +
		BandEnergy(d.Levels[0].LH)*float64(len(d.Levels[0].LH.Pix)) +
		BandEnergy(d.Levels[0].HH)*float64(len(d.Levels[0].HH.Pix))
	if rel := (eout - ein) / ein; rel > 1e-4 || rel < -1e-4 {
		t.Errorf("Haar energy drift %g", rel)
	}
}

func TestBankDelayStableAcrossLengths(t *testing.T) {
	// The calibrated delay must be length-independent: reconstruct at
	// several lengths and confirm alignment.
	rng := rand.New(rand.NewSource(59))
	for _, n := range []int{16, 30, 64, 100} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Float64()*100 - 50)
		}
		y := roundTripAligned(t, Daub6, x)
		if err := maxErr(x, y); err > 1e-2 {
			t.Errorf("n=%d: error %g (delay not length-stable)", n, err)
		}
	}
}

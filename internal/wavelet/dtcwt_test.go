package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
)

func newRefDTCWT() *DTCWT {
	return NewDTCWT(NewXfm(signal.RefKernel{}), DefaultTreeBanks())
}

func TestDTCWTPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newRefDTCWT()
	for _, s := range []struct{ w, h, lv int }{
		{88, 72, 3}, {64, 48, 3}, {40, 40, 3}, {35, 35, 3}, {32, 24, 3}, {16, 16, 2},
	} {
		img := randomFrame(rng, s.w, s.h)
		p, err := tr.Forward(img, s.lv)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.w, s.h, err)
		}
		rec, err := tr.Inverse(p)
		if err != nil {
			t.Fatal(err)
		}
		if rec.W != s.w || rec.H != s.h {
			t.Fatalf("%dx%d: got %dx%d", s.w, s.h, rec.W, rec.H)
		}
		e, _ := frame.MaxAbsDiff(img, rec)
		if e > 5e-2 {
			t.Errorf("%dx%d lv=%d: max reconstruction error %g", s.w, s.h, s.lv, e)
		}
	}
}

func TestDTCWTQ2CUnitary(t *testing.T) {
	// The four-real to two-complex combination must conserve energy:
	// sum|z1|^2 + sum|z2|^2 == p^2+q^2+r^2+s^2 per coefficient.
	rng := rand.New(rand.NewSource(12))
	tr := newRefDTCWT()
	img := randomFrame(rng, 48, 48)
	p, err := tr.Forward(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	for lv := range p.Levels {
		for bi := 0; bi < 3; bi++ {
			var ereal float64
			for _, c := range []int{TreeAA, TreeBB, TreeAB, TreeBA} {
				b := bandOf(p.trees[c], lv, bi)
				for _, v := range b.Pix {
					ereal += float64(v) * float64(v)
				}
			}
			z1, z2 := p.Levels[lv].Bands[bi], p.Levels[lv].Bands[5-bi]
			ecomplex := float64(len(z1.Re)) * (z1.Energy() + z2.Energy())
			if ereal == 0 {
				continue
			}
			if rel := math.Abs(ecomplex-ereal) / ereal; rel > 1e-4 {
				t.Errorf("level %d band %d: energy %g vs %g (rel %g)", lv+1, bi, ecomplex, ereal, rel)
			}
		}
	}
}

func TestQ2CC2QRoundTrip(t *testing.T) {
	// Property: distributing complex bands back to trees and re-combining
	// is the identity.
	f := func(p0, q0, r0, s0 int16) bool {
		pv := float32(p0) / 16
		qv := float32(q0) / 16
		rv := float32(r0) / 16
		sv := float32(s0) / 16
		z1re := (pv - qv) * float32(invSqrt2)
		z1im := (rv + sv) * float32(invSqrt2)
		z2re := (pv + qv) * float32(invSqrt2)
		z2im := (sv - rv) * float32(invSqrt2)
		p := (z1re + z2re) * float32(invSqrt2)
		q := (z2re - z1re) * float32(invSqrt2)
		r := (z1im - z2im) * float32(invSqrt2)
		s := (z1im + z2im) * float32(invSqrt2)
		tol := float32(1e-3) * (abs32(pv) + abs32(qv) + abs32(rv) + abs32(sv) + 1)
		return abs32(p-pv) < tol && abs32(q-qv) < tol && abs32(r-rv) < tol && abs32(s-sv) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func orientedGrating(w, h int, angleDeg, cycles float64) *frame.Frame {
	f := frame.New(w, h)
	th := angleDeg * math.Pi / 180
	fx := cycles * math.Cos(th) / float64(w)
	fy := cycles * math.Sin(th) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, float32(128+100*math.Cos(2*math.Pi*(fx*float64(x)+fy*float64(y)))))
		}
	}
	return f
}

func TestDTCWTOrientationSelectivity(t *testing.T) {
	// A +45 degree grating and its mirror must excite different subbands:
	// the DT-CWT, unlike the DWT, separates positive from negative
	// orientations. We check that the dominant band for the +45 grating
	// differs from the dominant band for the -45 grating.
	tr := newRefDTCWT()
	pPos, err := tr.Forward(orientedGrating(64, 64, 45, 12), 2)
	if err != nil {
		t.Fatal(err)
	}
	pNeg, err := tr.Forward(orientedGrating(64, 64, -45, 12), 2)
	if err != nil {
		t.Fatal(err)
	}
	dominant := func(l DTLevel) int {
		best, bi := -1.0, -1
		for i, b := range l.Bands {
			if e := b.Energy(); e > best {
				best, bi = e, i
			}
		}
		return bi
	}
	dp := dominant(pPos.Levels[1])
	dn := dominant(pNeg.Levels[1])
	if dp == dn {
		t.Errorf("mirrored 45-degree gratings excite the same band (%d); dual tree should separate them", dp)
	}
}

func TestDTCWTShiftInvariance(t *testing.T) {
	// The headline property that justifies the DT-CWT over the DWT in the
	// paper: subband magnitudes should vary much less under a one-pixel
	// shift than DWT coefficient magnitudes do. We measure the relative
	// L2 change of level-2 detail magnitude under a 1px horizontal shift.
	img := orientedGrating(64, 64, 30, 9)
	shifted := frame.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			shifted.Set(x, y, img.At((x+1)%64, y))
		}
	}

	dtChange := dtcwtMagChange(t, img, shifted)
	dwtChange := dwtMagChange(t, img, shifted)
	if dtChange > 0.6*dwtChange {
		t.Errorf("DT-CWT shift sensitivity %.4f not clearly below DWT %.4f", dtChange, dwtChange)
	}
}

func dtcwtMagChange(t *testing.T, a, b *frame.Frame) float64 {
	t.Helper()
	tr := newRefDTCWT()
	pa, err := tr.Forward(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := tr.Forward(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for _, bi := range []int{0, 1, 2, 3, 4, 5} {
		ba, bb := pa.Levels[1].Bands[bi], pb.Levels[1].Bands[bi]
		for i := range ba.Re {
			ma, mb := ba.Mag(i), bb.Mag(i)
			num += (ma - mb) * (ma - mb)
			den += ma * ma
		}
	}
	return math.Sqrt(num / den)
}

func dwtMagChange(t *testing.T, a, b *frame.Frame) float64 {
	t.Helper()
	xf := NewXfm(signal.RefKernel{})
	da, err := Forward2D(xf, banksN(CDF97, 2), banksN(CDF97, 2), a, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Forward2D(xf, banksN(CDF97, 2), banksN(CDF97, 2), b, 2)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for _, sel := range []func(Bands) *frame.Frame{
		func(x Bands) *frame.Frame { return x.HL },
		func(x Bands) *frame.Frame { return x.LH },
		func(x Bands) *frame.Frame { return x.HH },
	} {
		fa, fb := sel(da.Levels[1]), sel(db.Levels[1])
		for i := range fa.Pix {
			ma := math.Abs(float64(fa.Pix[i]))
			mb := math.Abs(float64(fb.Pix[i]))
			num += (ma - mb) * (ma - mb)
			den += ma * ma
		}
	}
	return math.Sqrt(num / den)
}

func TestDTCWTLevelsAndBandCount(t *testing.T) {
	tr := newRefDTCWT()
	img := randomFrame(rand.New(rand.NewSource(13)), 88, 72)
	p, err := tr.Forward(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLevels() != 3 {
		t.Fatalf("levels=%d, want 3", p.NumLevels())
	}
	for lv, l := range p.Levels {
		for bi, b := range l.Bands {
			if b == nil {
				t.Fatalf("level %d band %d missing", lv+1, bi)
			}
			if len(b.Re) != b.W*b.H || len(b.Im) != b.W*b.H {
				t.Fatalf("level %d band %d: inconsistent storage", lv+1, bi)
			}
		}
	}
	for c, ll := range p.LLs {
		if ll == nil {
			t.Fatalf("missing LL for tree combo %d", c)
		}
	}
}

func TestDTCWTInverseAfterMagnitudePreservingEdit(t *testing.T) {
	// Zeroing Im and Re of a band then inverting must still produce a
	// finite, correctly sized frame (robustness of the c2q path).
	tr := newRefDTCWT()
	img := randomFrame(rand.New(rand.NewSource(14)), 32, 32)
	p, err := tr.Forward(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	z := p.Levels[0].Bands[2]
	for i := range z.Re {
		z.Re[i], z.Im[i] = 0, 0
	}
	rec, err := tr.Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rec.Pix {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite sample after band edit")
		}
	}
}

package wavelet

import (
	"errors"
	"fmt"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
)

// noPool is the allocating fallback used by the classic entry points
// (Forward2D, Inverse2D): every plane is a fresh plain frame, exactly the
// pre-pool behavior.
var noPool = bufpool.Passthrough()

// Bands holds the detail subbands of one decomposition level. Following
// the paper's naming, the first letter is the horizontal frequency and the
// second the vertical one: HL is high-horizontal/low-vertical detail.
type Bands struct {
	HL, LH, HH *frame.Frame
}

// release returns the band planes to their pool (a no-op for plain ones).
func (b *Bands) release() {
	for _, f := range []*frame.Frame{b.HL, b.LH, b.HH} {
		if f != nil {
			f.Release()
		}
	}
	b.HL, b.LH, b.HH = nil, nil, nil
}

// Decomp is a multi-level separable 2-D wavelet decomposition of a frame.
// Levels[0] is the finest scale. LL is the coarsest lowpass residual.
type Decomp struct {
	RowBanks []*Bank // analysis/synthesis bank per level, horizontal
	ColBanks []*Bank // analysis/synthesis bank per level, vertical
	Levels   []Bands
	LL       *frame.Frame
	sizes    []wh // unpadded input size at each level, for inverse cropping
}

// release returns every plane of the decomposition to its pool.
func (d *Decomp) release() {
	for i := range d.Levels {
		d.Levels[i].release()
	}
	if d.LL != nil {
		d.LL.Release()
		d.LL = nil
	}
}

type wh struct{ w, h int }

// ErrBadLevels reports an unusable decomposition depth.
var ErrBadLevels = errors.New("wavelet: levels must be >= 1 and leave subbands of at least 2x2")

// MaxLevels returns the deepest decomposition usable for a w x h frame
// (every level's padded input must be at least 4 samples in each
// dimension).
func MaxLevels(w, h int) int {
	levels := 0
	for {
		pw, ph := w+w%2, h+h%2
		if pw < 4 || ph < 4 {
			return levels
		}
		levels++
		w, h = pw/2, ph/2
	}
}

// levelGeom reports the padded input and subband geometry of level lv+1
// given the unpadded input geometry of that level.
func levelGeom(w, h int) (pw, ph, mw, mh int) {
	pw, ph = w+w%2, h+h%2
	return pw, ph, pw / 2, ph / 2
}

// shapeDecomp (re)shapes d for a w x h input at the given depth, drawing
// planes from pool: a decomposition already shaped for that geometry is
// reused untouched (the steady-state fast path), anything else is released
// and rebuilt. The plane shapes — and the per-level sizes the inverse
// crops back to — depend only on (w, h, levels), so a reused decomposition
// is structurally identical to a fresh one.
func shapeDecomp(d *Decomp, rowBanks, colBanks []*Bank, w, h, levels int, pool *bufpool.Pool) error {
	d.RowBanks, d.ColBanks = rowBanks[:levels], colBanks[:levels]
	if len(d.Levels) == levels && len(d.sizes) == levels && d.LL != nil {
		if d.sizes[0].w == w && d.sizes[0].h == h {
			return nil // already shaped for this geometry
		}
	}
	d.release()
	if cap(d.Levels) >= levels {
		d.Levels = d.Levels[:levels]
	} else {
		d.Levels = make([]Bands, levels)
	}
	if cap(d.sizes) >= levels {
		d.sizes = d.sizes[:levels]
	} else {
		d.sizes = make([]wh, levels)
	}
	cw, ch := w, h
	for lv := 0; lv < levels; lv++ {
		d.sizes[lv] = wh{cw, ch}
		_, _, mw, mh := levelGeom(cw, ch)
		var err error
		if d.Levels[lv].HL, err = pool.Get(mw, mh); err == nil {
			if d.Levels[lv].LH, err = pool.Get(mw, mh); err == nil {
				d.Levels[lv].HH, err = pool.Get(mw, mh)
			}
		}
		if err != nil {
			d.release()
			return err
		}
		cw, ch = mw, mh
	}
	ll, err := pool.Get(cw, ch)
	if err != nil {
		d.release()
		return err
	}
	d.LL = ll
	return nil
}

// Forward2D decomposes img over the given number of levels. rowBanks and
// colBanks supply the per-level filter banks (index 0 = level 1); both must
// have at least `levels` entries. Odd dimensions are handled by edge
// replication to the next even size, and the original size is recorded so
// Inverse2D reconstructs the exact input dimensions. Every plane of the
// result is freshly allocated; the pooled transform path goes through
// DTCWT.ForwardInto.
func Forward2D(x *Xfm, rowBanks, colBanks []*Bank, img *frame.Frame, levels int) (*Decomp, error) {
	if levels < 1 || levels > MaxLevels(img.W, img.H) {
		return nil, fmt.Errorf("%w: levels=%d for %dx%d (max %d)", ErrBadLevels, levels, img.W, img.H, MaxLevels(img.W, img.H))
	}
	if len(rowBanks) < levels || len(colBanks) < levels {
		return nil, fmt.Errorf("wavelet.Forward2D: need %d banks per dimension, have %d/%d", levels, len(rowBanks), len(colBanks))
	}
	d := &Decomp{}
	if err := shapeDecomp(d, rowBanks, colBanks, img.W, img.H, levels, noPool); err != nil {
		return nil, err
	}
	if err := forward2DInto(x, d, img, levels, noPool); err != nil {
		return nil, err
	}
	return d, nil
}

// forward2DInto runs the analysis cascade into a pre-shaped decomposition.
// Intermediate lowpass planes (each level's input to the next) are scratch
// leased from pool for the duration of the cascade, like the board's
// transform frame stores; the final one lands in d.LL.
func forward2DInto(x *Xfm, d *Decomp, img *frame.Frame, levels int, pool *bufpool.Pool) error {
	cur := img
	var curOwned *frame.Frame // pooled intermediate lowpass awaiting release
	release := func() {
		if curOwned != nil {
			curOwned.Release()
			curOwned = nil
		}
	}
	for lv := 0; lv < levels; lv++ {
		d.sizes[lv] = wh{cur.W, cur.H}
		_, _, mw, mh := levelGeom(cur.W, cur.H)
		ll := d.LL
		if lv < levels-1 {
			var err error
			if ll, err = pool.Get(mw, mh); err != nil {
				release()
				return err
			}
		}
		if err := forwardLevelInto(x, d.RowBanks[lv], d.ColBanks[lv], cur, ll, d.Levels[lv], pool); err != nil {
			if lv < levels-1 {
				ll.Release()
			}
			release()
			return err
		}
		release()
		if lv < levels-1 {
			curOwned = ll
		}
		cur = ll
	}
	return nil
}

// forwardLevelInto performs one separable analysis level, writing the LL
// subband into ll and the three detail subbands into b (all pre-shaped).
// Every sample of every output plane is written, so reused (uncleared)
// pooled planes give bit-identical results to fresh zeroed ones.
func forwardLevelInto(x *Xfm, rowBank, colBank *Bank, img, ll *frame.Frame, b Bands, pool *bufpool.Pool) error {
	p, padOwned, err := padEvenPooled(x, img, pool)
	if err != nil {
		return err
	}
	w, h := p.W, p.H
	mw, mh := w/2, h/2

	// Horizontal pass: each row splits into lo (left half) and hi (right).
	rowOut, err := pool.Get(w, h)
	if err != nil {
		if padOwned != nil {
			padOwned.Release()
		}
		return err
	}
	if x.tiledKernels() {
		x.forwardRowsTiled(rowBank, p, rowOut, w, h, mw)
	} else {
		for y := 0; y < h; y++ {
			row := p.Row(y)
			out := rowOut.Row(y)
			x.Analyze1D(rowBank, row, out[:mw], out[mw:])
		}
	}
	if padOwned != nil {
		padOwned.Release()
	}

	// Vertical pass on each column of both halves.
	hl, lh, hh := b.HL, b.LH, b.HH
	if x.tiledKernels() {
		x.forwardColsTiled(colBank, rowOut, ll.Pix, lh.Pix, hl.Pix, hh.Pix, w, h, mw, mh)
		rowOut.Release()
		return nil
	}
	col := growCol(x, h)
	clo := x.lo.grow(x.pool, mh)
	chi := x.hi.grow(x.pool, mh)
	for cx := 0; cx < w; cx++ {
		for y := 0; y < h; y++ {
			col[y] = rowOut.Pix[y*w+cx]
		}
		x.chargeCPU(h)
		lo, hi := x.Analyze1D(colBank, col, clo, chi)
		if cx < mw {
			for y := 0; y < mh; y++ {
				ll.Pix[y*mw+cx] = lo[y]
				lh.Pix[y*mw+cx] = hi[y]
			}
		} else {
			for y := 0; y < mh; y++ {
				hl.Pix[y*mw+cx-mw] = lo[y]
				hh.Pix[y*mw+cx-mw] = hi[y]
			}
		}
		x.chargeCPU(h)
	}
	rowOut.Release()
	return nil
}

// Inverse2D reconstructs the frame from a decomposition. The result is a
// fresh plain frame; the pooled path goes through DTCWT.Inverse.
func Inverse2D(x *Xfm, d *Decomp) (*frame.Frame, error) {
	return inverse2DPooled(x, d, noPool)
}

// inverse2DPooled reconstructs the frame, leasing every working plane —
// including the returned reconstruction, which the caller owns — from
// pool.
func inverse2DPooled(x *Xfm, d *Decomp, pool *bufpool.Pool) (*frame.Frame, error) {
	if len(d.Levels) == 0 || d.LL == nil {
		return nil, errors.New("wavelet.Inverse2D: empty decomposition")
	}
	cur := d.LL
	var curOwned *frame.Frame // pooled intermediate reconstruction
	for lv := len(d.Levels) - 1; lv >= 0; lv-- {
		b := d.Levels[lv]
		if !cur.SameSize(b.HL) || !cur.SameSize(b.LH) || !cur.SameSize(b.HH) {
			if curOwned != nil {
				curOwned.Release()
			}
			return nil, fmt.Errorf("wavelet.Inverse2D: level %d subband size mismatch", lv+1)
		}
		next, err := inverseLevelPooled(x, d.RowBanks[lv], d.ColBanks[lv], cur, b, d.sizes[lv], pool)
		if curOwned != nil {
			curOwned.Release()
		}
		if err != nil {
			return nil, err
		}
		curOwned = next
		cur = next
	}
	return cur, nil
}

// inverseLevelPooled undoes one analysis level and crops to the recorded
// size. The horizontal synthesis runs in place over the vertical pass's
// plane — the board's wave engine reads and writes the same frame store —
// so the level needs one working plane, not two; the modeled memcpy
// charges are unchanged.
func inverseLevelPooled(x *Xfm, rowBank, colBank *Bank, ll *frame.Frame, b Bands, orig wh, pool *bufpool.Pool) (*frame.Frame, error) {
	mw, mh := ll.W, ll.H
	w, h := 2*mw, 2*mh

	// Vertical synthesis into the two half-width planes.
	rowOut, err := pool.Get(w, h)
	if err != nil {
		return nil, err
	}
	if x.tiledKernels() {
		x.inverseColsTiled(colBank, ll.Pix, b.LH.Pix, rowOut, w, h, mw, mh, 0)
		x.inverseColsTiled(colBank, b.HL.Pix, b.HH.Pix, rowOut, w, h, mw, mh, mw)
		x.inverseRowsTiled(rowBank, rowOut, w, h, mw)
	} else {
		loCol := growCol(x, mh)
		hiCol := growHiCol(x, mh)
		y2 := x.y2.grow(x.pool, h)
		for cx := 0; cx < mw; cx++ {
			for y := 0; y < mh; y++ {
				loCol[y] = ll.Pix[y*mw+cx]
				hiCol[y] = b.LH.Pix[y*mw+cx]
			}
			x.chargeCPU(2 * mh)
			y2 = x.Synthesize1D(colBank, loCol, hiCol, y2)
			for y := 0; y < h; y++ {
				rowOut.Pix[y*w+cx] = y2[y]
			}
			x.chargeCPU(h)
		}
		for cx := 0; cx < mw; cx++ {
			for y := 0; y < mh; y++ {
				loCol[y] = b.HL.Pix[y*mw+cx]
				hiCol[y] = b.HH.Pix[y*mw+cx]
			}
			x.chargeCPU(2 * mh)
			y2 = x.Synthesize1D(colBank, loCol, hiCol, y2)
			for y := 0; y < h; y++ {
				rowOut.Pix[y*w+cx+mw] = y2[y]
			}
			x.chargeCPU(h)
		}

		// Horizontal synthesis row by row, in place: Synthesize1D consumes
		// the subband halves into its padded scratch before any output is
		// written, so writing the reconstruction back over the same row is
		// safe.
		y2 = x.y2.grow(x.pool, w)
		for y := 0; y < h; y++ {
			row := rowOut.Row(y)
			y2 = x.Synthesize1D(rowBank, row[:mw], row[mw:], y2)
			copy(row, y2)
			x.chargeCPU(w)
		}
	}

	if orig.w == w && orig.h == h {
		return rowOut, nil
	}
	cropped, err := pool.Get(orig.w, orig.h)
	if err != nil {
		rowOut.Release()
		return nil, err
	}
	for r := 0; r < orig.h; r++ {
		copy(cropped.Row(r), rowOut.Pix[r*w:r*w+orig.w])
	}
	rowOut.Release()
	return cropped, nil
}

// padEvenPooled returns img extended to even dimensions by edge
// replication — a pass-through when already even, otherwise a plane leased
// from pool that the caller releases via the returned owned handle.
func padEvenPooled(x *Xfm, img *frame.Frame, pool *bufpool.Pool) (padded, owned *frame.Frame, err error) {
	padded, owned, err = padEvenCompute(img, pool)
	if owned != nil {
		x.chargeCPU(owned.W * owned.H)
	}
	return padded, owned, err
}

func growCol(x *Xfm, n int) []float32 {
	return x.col.grow(x.pool, n)
}

func growHiCol(x *Xfm, n int) []float32 {
	return x.hiCol.grow(x.pool, n)
}

// Mosaic renders the classic subband layout picture (Fig. 1 of the paper):
// detail subbands framed around the recursively divided LL quadrant. Each
// subband is amplitude-normalized independently for visibility.
func (d *Decomp) Mosaic() *frame.Frame {
	if len(d.Levels) == 0 {
		return frame.New(0, 0)
	}
	w := d.Levels[0].HL.W * 2
	h := d.Levels[0].HL.H * 2
	out := frame.New(w, h)
	for _, b := range d.Levels {
		placeNormalized(out, b.HL, b.HL.W, 0)
		placeNormalized(out, b.LH, 0, b.LH.H)
		placeNormalized(out, b.HH, b.HH.W, b.HH.H)
	}
	placeNormalized(out, d.LL, 0, 0)
	return out
}

func placeNormalized(dst, src *frame.Frame, x0, y0 int) {
	s := src.Clone()
	s.Normalize()
	for y := 0; y < s.H && y0+y < dst.H; y++ {
		for x := 0; x < s.W && x0+x < dst.W; x++ {
			dst.Set(x0+x, y0+y, s.At(x, y))
		}
	}
}

// BandEnergy returns the mean squared coefficient value of a frame, used
// by the subband inspection tool.
func BandEnergy(f *frame.Frame) float64 {
	var s float64
	for _, v := range f.Pix {
		s += float64(v) * float64(v)
	}
	if len(f.Pix) == 0 {
		return 0
	}
	return s / float64(len(f.Pix))
}

package wavelet

import (
	"errors"
	"fmt"

	"zynqfusion/internal/frame"
)

// Bands holds the detail subbands of one decomposition level. Following
// the paper's naming, the first letter is the horizontal frequency and the
// second the vertical one: HL is high-horizontal/low-vertical detail.
type Bands struct {
	HL, LH, HH *frame.Frame
}

// Decomp is a multi-level separable 2-D wavelet decomposition of a frame.
// Levels[0] is the finest scale. LL is the coarsest lowpass residual.
type Decomp struct {
	RowBanks []*Bank // analysis/synthesis bank per level, horizontal
	ColBanks []*Bank // analysis/synthesis bank per level, vertical
	Levels   []Bands
	LL       *frame.Frame
	sizes    []wh // unpadded input size at each level, for inverse cropping
}

type wh struct{ w, h int }

// ErrBadLevels reports an unusable decomposition depth.
var ErrBadLevels = errors.New("wavelet: levels must be >= 1 and leave subbands of at least 2x2")

// MaxLevels returns the deepest decomposition usable for a w x h frame
// (every level's padded input must be at least 4 samples in each
// dimension).
func MaxLevels(w, h int) int {
	levels := 0
	for {
		pw, ph := w+w%2, h+h%2
		if pw < 4 || ph < 4 {
			return levels
		}
		levels++
		w, h = pw/2, ph/2
	}
}

// Forward2D decomposes img over the given number of levels. rowBanks and
// colBanks supply the per-level filter banks (index 0 = level 1); both must
// have at least `levels` entries. Odd dimensions are handled by edge
// replication to the next even size, and the original size is recorded so
// Inverse2D reconstructs the exact input dimensions.
func Forward2D(x *Xfm, rowBanks, colBanks []*Bank, img *frame.Frame, levels int) (*Decomp, error) {
	if levels < 1 || levels > MaxLevels(img.W, img.H) {
		return nil, fmt.Errorf("%w: levels=%d for %dx%d (max %d)", ErrBadLevels, levels, img.W, img.H, MaxLevels(img.W, img.H))
	}
	if len(rowBanks) < levels || len(colBanks) < levels {
		return nil, fmt.Errorf("wavelet.Forward2D: need %d banks per dimension, have %d/%d", levels, len(rowBanks), len(colBanks))
	}
	d := &Decomp{
		RowBanks: rowBanks[:levels],
		ColBanks: colBanks[:levels],
		Levels:   make([]Bands, levels),
		sizes:    make([]wh, levels),
	}
	cur := img
	for lv := 0; lv < levels; lv++ {
		d.sizes[lv] = wh{cur.W, cur.H}
		ll, bands := forwardLevel(x, rowBanks[lv], colBanks[lv], cur)
		d.Levels[lv] = bands
		cur = ll
	}
	d.LL = cur
	return d, nil
}

// forwardLevel performs one separable analysis level, returning the LL
// subband and the three detail subbands.
func forwardLevel(x *Xfm, rowBank, colBank *Bank, img *frame.Frame) (*frame.Frame, Bands) {
	p := padEven(x, img)
	w, h := p.W, p.H
	mw, mh := w/2, h/2

	// Horizontal pass: each row splits into lo (left half) and hi (right).
	rowOut := frame.New(w, h)
	for y := 0; y < h; y++ {
		row := p.Row(y)
		out := rowOut.Row(y)
		x.Analyze1D(rowBank, row, out[:mw], out[mw:])
	}

	// Vertical pass on each column of both halves.
	ll := frame.New(mw, mh)
	hl := frame.New(mw, mh)
	lh := frame.New(mw, mh)
	hh := frame.New(mw, mh)
	col := growCol(x, h)
	for cx := 0; cx < w; cx++ {
		for y := 0; y < h; y++ {
			col[y] = rowOut.Pix[y*w+cx]
		}
		x.chargeCPU(h)
		lo, hi := x.Analyze1D(colBank, col, x.lo, x.hi)
		x.lo, x.hi = lo, hi
		if cx < mw {
			for y := 0; y < mh; y++ {
				ll.Pix[y*mw+cx] = lo[y]
				lh.Pix[y*mw+cx] = hi[y]
			}
		} else {
			for y := 0; y < mh; y++ {
				hl.Pix[y*mw+cx-mw] = lo[y]
				hh.Pix[y*mw+cx-mw] = hi[y]
			}
		}
		x.chargeCPU(h)
	}
	return ll, Bands{HL: hl, LH: lh, HH: hh}
}

// Inverse2D reconstructs the frame from a decomposition.
func Inverse2D(x *Xfm, d *Decomp) (*frame.Frame, error) {
	if len(d.Levels) == 0 || d.LL == nil {
		return nil, errors.New("wavelet.Inverse2D: empty decomposition")
	}
	cur := d.LL
	for lv := len(d.Levels) - 1; lv >= 0; lv-- {
		b := d.Levels[lv]
		if !cur.SameSize(b.HL) || !cur.SameSize(b.LH) || !cur.SameSize(b.HH) {
			return nil, fmt.Errorf("wavelet.Inverse2D: level %d subband size mismatch", lv+1)
		}
		cur = inverseLevel(x, d.RowBanks[lv], d.ColBanks[lv], cur, b, d.sizes[lv])
	}
	return cur, nil
}

// inverseLevel undoes one analysis level and crops to the recorded size.
func inverseLevel(x *Xfm, rowBank, colBank *Bank, ll *frame.Frame, b Bands, orig wh) *frame.Frame {
	mw, mh := ll.W, ll.H
	w, h := 2*mw, 2*mh

	// Vertical synthesis into the two half-width planes.
	rowOut := frame.New(w, h)
	loCol := growCol(x, mh)
	hiCol := make([]float32, mh)
	for cx := 0; cx < mw; cx++ {
		for y := 0; y < mh; y++ {
			loCol[y] = ll.Pix[y*mw+cx]
			hiCol[y] = b.LH.Pix[y*mw+cx]
		}
		x.chargeCPU(2 * mh)
		x.y2 = x.Synthesize1D(colBank, loCol, hiCol, x.y2)
		for y := 0; y < h; y++ {
			rowOut.Pix[y*w+cx] = x.y2[y]
		}
		x.chargeCPU(h)
	}
	for cx := 0; cx < mw; cx++ {
		for y := 0; y < mh; y++ {
			loCol[y] = b.HL.Pix[y*mw+cx]
			hiCol[y] = b.HH.Pix[y*mw+cx]
		}
		x.chargeCPU(2 * mh)
		x.y2 = x.Synthesize1D(colBank, loCol, hiCol, x.y2)
		for y := 0; y < h; y++ {
			rowOut.Pix[y*w+cx+mw] = x.y2[y]
		}
		x.chargeCPU(h)
	}

	// Horizontal synthesis row by row.
	out := frame.New(w, h)
	for y := 0; y < h; y++ {
		row := rowOut.Row(y)
		x.y2 = x.Synthesize1D(rowBank, row[:mw], row[mw:], x.y2)
		copy(out.Row(y), x.y2)
		x.chargeCPU(w)
	}

	if orig.w == w && orig.h == h {
		return out
	}
	cropped, err := out.SubFrame(0, 0, orig.w, orig.h)
	if err != nil {
		panic("wavelet: internal crop error: " + err.Error())
	}
	return cropped
}

// padEven returns img extended to even dimensions by edge replication (a
// no-op clone-free pass-through when already even).
func padEven(x *Xfm, img *frame.Frame) *frame.Frame {
	if img.W%2 == 0 && img.H%2 == 0 {
		return img
	}
	w, h := img.W+img.W%2, img.H+img.H%2
	p := frame.New(w, h)
	for y := 0; y < h; y++ {
		sy := y
		if sy >= img.H {
			sy = img.H - 1
		}
		dst := p.Row(y)
		copy(dst, img.Row(sy))
		if w > img.W {
			dst[w-1] = dst[img.W-1]
		}
	}
	x.chargeCPU(w * h)
	return p
}

func growCol(x *Xfm, n int) []float32 {
	x.col = grow(x.col, n)
	return x.col
}

// Mosaic renders the classic subband layout picture (Fig. 1 of the paper):
// detail subbands framed around the recursively divided LL quadrant. Each
// subband is amplitude-normalized independently for visibility.
func (d *Decomp) Mosaic() *frame.Frame {
	if len(d.Levels) == 0 {
		return frame.New(0, 0)
	}
	w := d.Levels[0].HL.W * 2
	h := d.Levels[0].HL.H * 2
	out := frame.New(w, h)
	for _, b := range d.Levels {
		placeNormalized(out, b.HL, b.HL.W, 0)
		placeNormalized(out, b.LH, 0, b.LH.H)
		placeNormalized(out, b.HH, b.HH.W, b.HH.H)
	}
	placeNormalized(out, d.LL, 0, 0)
	return out
}

func placeNormalized(dst, src *frame.Frame, x0, y0 int) {
	s := src.Clone()
	s.Normalize()
	for y := 0; y < s.H && y0+y < dst.H; y++ {
		for x := 0; x < s.W && x0+x < dst.W; x++ {
			dst.Set(x0+x, y0+y, s.At(x, y))
		}
	}
}

// BandEnergy returns the mean squared coefficient value of a frame, used
// by the subband inspection tool.
func BandEnergy(f *frame.Frame) float64 {
	var s float64
	for _, v := range f.Pix {
		s += float64(v) * float64(v)
	}
	if len(f.Pix) == 0 {
		return 0
	}
	return s / float64(len(f.Pix))
}

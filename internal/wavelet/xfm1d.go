package wavelet

import (
	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
)

// cpuCharger is implemented by kernels that model the cost of
// unaccelerated "structure" work (padding, gathers, reordering) executed by
// the ARM core in every configuration. Kernels without the hook (e.g. the
// pure reference kernel) simply run cost-free.
type cpuCharger interface {
	ChargeCPU(samples int)
}

// scratch is one reusable float32 work buffer. Its backing store is leased
// from the transform's frame pool when one is attached (the board keeps
// line buffers in the same DDR arena as its frame stores), falling back to
// a plain allocation when the pool is absent or at its cap. A buffer only
// reallocates when asked to grow beyond its capacity, so in steady state
// grow is a reslice.
type scratch struct {
	buf   []float32
	lease *frame.Frame
}

// grow returns the buffer resized to n samples. Contents are unspecified;
// every caller fully overwrites before reading.
func (s *scratch) grow(pool *bufpool.Pool, n int) []float32 {
	if cap(s.buf) >= n {
		s.buf = s.buf[:n]
		return s.buf
	}
	if s.lease != nil {
		s.lease.Release()
		s.lease = nil
	}
	s.buf = nil
	if pool != nil {
		if f, err := pool.Get(n, 1); err == nil {
			s.lease = f
			s.buf = f.Pix[:n]
		}
	}
	if s.buf == nil {
		s.buf = make([]float32, n)
	}
	return s.buf
}

// release returns the lease (if any) and drops the buffer.
func (s *scratch) release() {
	if s.lease != nil {
		s.lease.Release()
		s.lease = nil
	}
	s.buf = nil
}

// tileScratch is the private working set of one tile worker: padded
// inputs, gathered columns and synthesis staging, sized before each
// parallel region (while single-threaded) so tile bodies never touch the
// pool.
type tileScratch struct {
	px, plo, phi, y, y2, col, hiCol, lo, hi scratch

	// Column-block staging for the fused dual-tree vertical pass: a block
	// of gathered input columns and the per-bank subband outputs awaiting
	// the blocked scatter (see fwdColsDualTask).
	colBlk, bLoA, bHiA, bLoB, bHiB scratch
}

func (t *tileScratch) release() {
	t.px.release()
	t.plo.release()
	t.phi.release()
	t.y.release()
	t.y2.release()
	t.col.release()
	t.hiCol.release()
	t.lo.release()
	t.hi.release()
	t.colBlk.release()
	t.bLoA.release()
	t.bHiA.release()
	t.bLoB.release()
	t.bHiB.release()
}

// Xfm performs 1-D analysis/synthesis passes with a given kernel, reusing
// scratch buffers across calls. It is not safe for concurrent use — create
// one Xfm per logical stream — but it fans its own 2-D passes out across
// an attached kernels.Workers pool when the kernel supports tiled
// execution (see SetWorkers).
type Xfm struct {
	K signal.Kernel
	// W dispatches tiled passes; nil (or a 1-worker pool) runs every pass
	// sequentially on the caller.
	W *kernels.Workers

	px, plo, phi, y, y2, col, hiCol, lo, hi scratch

	charger cpuCharger
	tile    kernels.TileKernel // non-nil when K supports concurrent tile compute
	pool    *bufpool.Pool      // scratch backing-store source; nil → plain make
	ws      []tileScratch      // per-worker scratch for tiled passes

	// Reusable task boxes: passing pointers to these through the Task
	// interface keeps tiled dispatch at zero allocations per frame. The B
	// variants are the second stream of the fused dual-stream traversal,
	// which pairs two bodies per dispatch.
	fwdRows     fwdRowsTask
	fwdRowsB    fwdRowsTask
	fwdCols     fwdColsTask
	fwdColsB    fwdColsTask
	fwdColsD    fwdColsDualTask
	fwdColsDB   fwdColsDualTask
	fwdColsK    fwdColsBlkTask
	fwdColsKB   fwdColsBlkTask
	pair        pairTask
	invCols     invColsTask
	invColsK    invColsBlkTask
	invRows     invRowsTask
	q2c         q2cTask
	c2q         c2qTask
	pixAcc      accTask
	pixScale    scaleTask
	pixAccScale accScaleTask
}

// NewXfm returns a transformer driving the given kernel.
func NewXfm(k signal.Kernel) *Xfm {
	x := &Xfm{K: k}
	x.charger, _ = k.(cpuCharger)
	x.tile, _ = kernels.AsTile(k)
	return x
}

// SetWorkers attaches the worker pool tiled passes dispatch across. The
// pool is shared, not owned: the caller closes it. A nil pool (the
// default) keeps every pass sequential.
func (x *Xfm) SetWorkers(w *kernels.Workers) { x.W = w }

// UseScratchPool makes the transform lease its scratch line buffers from
// pool instead of allocating them, mirroring the board's single DDR
// arena. Buffers fall back to plain allocations when the pool is at its
// cap. Call ReleaseScratch on teardown to return the leases.
func (x *Xfm) UseScratchPool(p *bufpool.Pool) { x.pool = p }

// ReleaseScratch returns every pooled scratch lease and drops the scratch
// buffers. The transform stays usable; the next pass re-acquires.
func (x *Xfm) ReleaseScratch() {
	x.px.release()
	x.plo.release()
	x.phi.release()
	x.y.release()
	x.y2.release()
	x.col.release()
	x.hiCol.release()
	x.lo.release()
	x.hi.release()
	for i := range x.ws {
		x.ws[i].release()
	}
}

// TileCapable reports whether the kernel offers concurrency-safe tile
// compute — the legality gate for operator fusion as well as tiled
// dispatch. Engines that veto tiling via TilingEnabled report false.
func (x *Xfm) TileCapable() bool { return x.tile != nil }

// tiledKernels reports whether 2-D kernel passes should run tiled: the
// kernel must offer concurrency-safe tile compute and the pool must have
// real parallelism. The sequential path is the reference; the tiled path
// must match it bit for bit.
func (x *Xfm) tiledKernels() bool { return x.tile != nil && x.W.N() > 1 }

// workspaces returns the first n per-worker scratch sets, growing the
// table on first use.
func (x *Xfm) workspaces(n int) []tileScratch {
	for len(x.ws) < n {
		x.ws = append(x.ws, tileScratch{})
	}
	return x.ws[:n]
}

func (x *Xfm) chargeCPU(samples int) {
	if x.charger != nil {
		x.charger.ChargeCPU(samples)
	}
}

// Analyze1D decomposes an even-length signal into lo and hi subbands of
// half length using bank b. dstLo and dstHi may be nil or reused slices.
func (x *Xfm) Analyze1D(b *Bank, in []float32, dstLo, dstHi []float32) (lo, hi []float32) {
	n := len(in)
	if n == 0 || n%2 != 0 {
		panic("wavelet.Analyze1D: signal length must be even and nonzero")
	}
	m := n / 2
	px := kernels.PadPeriodic(in, x.px.grow(x.pool, n+signal.TapCount))
	x.chargeCPU(len(px))
	lo = grow(dstLo, m)
	hi = grow(dstHi, m)
	x.K.Analyze(&b.AL, &b.AH, px, lo, hi)
	return lo, hi
}

// Synthesize1D reconstructs the signal from its subbands, compensating the
// bank's round-trip delay so the output aligns with the analysis input.
func (x *Xfm) Synthesize1D(b *Bank, lo, hi []float32, dst []float32) []float32 {
	m := len(lo)
	if len(hi) != m || m == 0 {
		panic("wavelet.Synthesize1D: subband length mismatch")
	}
	n := 2 * m
	plo := kernels.PadPeriodicPairs(lo, x.plo.grow(x.pool, m+signal.SynthesisPad))
	phi := kernels.PadPeriodicPairs(hi, x.phi.grow(x.pool, m+signal.SynthesisPad))
	x.chargeCPU(len(plo) + len(phi))
	y := x.y.grow(x.pool, n)
	x.K.Synthesize(&b.SL, &b.SH, plo, phi, y)
	dst = grow(dst, n)
	signal.Rotate(dst, y, b.delay)
	x.chargeCPU(n)
	return dst
}

func grow(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

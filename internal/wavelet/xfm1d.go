package wavelet

import (
	"zynqfusion/internal/signal"
)

// cpuCharger is implemented by kernels that model the cost of
// unaccelerated "structure" work (padding, gathers, reordering) executed by
// the ARM core in every configuration. Kernels without the hook (e.g. the
// pure reference kernel) simply run cost-free.
type cpuCharger interface {
	ChargeCPU(samples int)
}

// Xfm performs 1-D analysis/synthesis passes with a given kernel, reusing
// scratch buffers across calls. It is not safe for concurrent use; create
// one Xfm per goroutine.
type Xfm struct {
	K       signal.Kernel
	px      []float32
	plo     []float32
	phi     []float32
	y       []float32
	y2      []float32
	col     []float32
	hiCol   []float32
	lo, hi  []float32
	charger cpuCharger
}

// NewXfm returns a transformer driving the given kernel.
func NewXfm(k signal.Kernel) *Xfm {
	x := &Xfm{K: k}
	x.charger, _ = k.(cpuCharger)
	return x
}

func (x *Xfm) chargeCPU(samples int) {
	if x.charger != nil {
		x.charger.ChargeCPU(samples)
	}
}

// Analyze1D decomposes an even-length signal into lo and hi subbands of
// half length using bank b. dstLo and dstHi may be nil or reused slices.
func (x *Xfm) Analyze1D(b *Bank, in []float32, dstLo, dstHi []float32) (lo, hi []float32) {
	n := len(in)
	if n == 0 || n%2 != 0 {
		panic("wavelet.Analyze1D: signal length must be even and nonzero")
	}
	m := n / 2
	x.px = signal.PadPeriodic(in, x.px)
	x.chargeCPU(len(x.px))
	lo = grow(dstLo, m)
	hi = grow(dstHi, m)
	x.K.Analyze(&b.AL, &b.AH, x.px, lo, hi)
	return lo, hi
}

// Synthesize1D reconstructs the signal from its subbands, compensating the
// bank's round-trip delay so the output aligns with the analysis input.
func (x *Xfm) Synthesize1D(b *Bank, lo, hi []float32, dst []float32) []float32 {
	m := len(lo)
	if len(hi) != m || m == 0 {
		panic("wavelet.Synthesize1D: subband length mismatch")
	}
	n := 2 * m
	x.plo = signal.PadPeriodicPairs(lo, x.plo)
	x.phi = signal.PadPeriodicPairs(hi, x.phi)
	x.chargeCPU(len(x.plo) + len(x.phi))
	x.y = grow(x.y, n)
	x.K.Synthesize(&b.SL, &b.SH, x.plo, x.phi, x.y)
	dst = grow(dst, n)
	signal.Rotate(dst, x.y, b.delay)
	x.chargeCPU(n)
	return dst
}

func grow(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

package zynqfusion

import (
	"strings"
	"testing"

	"zynqfusion/internal/camera"
)

// TestOptionsValidationTable is the one-stop validation table for the
// Options knobs that gate construction: PipelineDepth alongside the
// SplitPolicy and Levels cases, each invalid value paired with the
// actionable fragment its error must carry.
func TestOptionsValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // "" = must construct
	}{
		// PipelineDepth: 0 is the sequential default, the executor itself
		// requires >= 1, negatives and absurd depths are refused up front.
		{"pipeline depth default sequential", Options{PipelineDepth: 0}, ""},
		{"pipeline depth one degenerate", Options{PipelineDepth: 1}, ""},
		{"pipeline depth overlapped", Options{PipelineDepth: 4}, ""},
		{"pipeline depth max", Options{PipelineDepth: MaxPipelineDepth}, ""},
		{"pipeline depth negative", Options{PipelineDepth: -1}, "PipelineDepth must be non-negative"},
		{"pipeline depth very negative", Options{PipelineDepth: -64}, "PipelineDepth must be non-negative"},
		{"pipeline depth absurd", Options{PipelineDepth: MaxPipelineDepth + 1}, "exceeds MaxPipelineDepth"},
		{"pipeline depth ridiculous", Options{PipelineDepth: 1 << 20}, "exceeds MaxPipelineDepth"},
		// SplitPolicy: named policies and decimal shares pass, junk and
		// engine mismatches fail.
		{"split oracle", Options{SplitPolicy: SplitOracle}, ""},
		{"split decimal share", Options{SplitPolicy: "0.4"}, ""},
		{"split junk", Options{SplitPolicy: "bogus"}, "unknown split policy"},
		{"split share out of range", Options{SplitPolicy: "1.5"}, "unknown split policy"},
		{"split on static engine", Options{Engine: EngineNEON, SplitPolicy: SplitOracle}, "requires the adaptive engine"},
		// Levels: negative refused at New, over-deep refused at Fuse.
		{"negative levels", Options{Levels: -1}, "Levels must be non-negative"},
		{"levels ok", Options{Levels: 4}, ""},
		// Engine and operating point names.
		{"unknown engine", Options{Engine: "tpu"}, "unknown engine"},
		{"unknown operating point", Options{OperatingPoint: "1GHz"}, "unknown operating point"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := New(tc.opts)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if want := tc.opts.PipelineDepth; f.PipelineDepth() != want {
					t.Fatalf("PipelineDepth() = %d, want %d", f.PipelineDepth(), want)
				}
				return
			}
			if err == nil {
				t.Fatalf("Options %+v constructed; want error mentioning %q", tc.opts, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestPipelineDepthPublicAPI drives the public Fuse path at several
// depths: pixels must not move, the overlapped depths must report shorter
// periods than sequential once filled, and PipelineStats must only exist
// for pipelined fusers.
func TestPipelineDepthPublicAPI(t *testing.T) {
	sc := camera.NewScene(64, 48, 21)
	vis, ir := sc.Visible(), sc.Thermal()

	seq, err := New(Options{SplitPolicy: SplitOracle, IncludeIO: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seq.PipelineStats(); ok {
		t.Fatal("sequential fuser reports pipeline stats")
	}

	pf, err := New(Options{SplitPolicy: SplitOracle, IncludeIO: true, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fuse frame-for-frame on both executors: the split engine's
	// error-diffusion carry evolves across frames, so frame k is only
	// comparable against sequential frame k.
	var last, seqLast Stats
	for i := 0; i < 8; i++ {
		want, seqStats, err := seq.Fuse(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := pf.Fuse(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		for p := range got.Pix {
			if got.Pix[p] != want.Pix[p] {
				t.Fatalf("frame %d: pixel %d moved under pipelining", i, p)
			}
		}
		last, seqLast = st, seqStats
	}
	if last.Total >= seqLast.Total {
		t.Fatalf("steady pipelined period %v not below sequential %v", last.Total, seqLast.Total)
	}
	ps, ok := pf.PipelineStats()
	if !ok {
		t.Fatal("pipelined fuser reports no stats")
	}
	if ps.Depth != 4 || ps.Frames != 8 || ps.MeanInFlight <= 1.2 {
		t.Fatalf("pipeline stats = %+v", ps)
	}
}

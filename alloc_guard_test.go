package zynqfusion

import (
	"fmt"
	"runtime"
	"testing"
)

// allocGuardWarmup is how many frames fill the pool, the adaptive
// routing statistics and the pipelined executor's ring before the guard
// measures — the steady state a long-running stream lives in.
const allocGuardWarmup = 10

// TestAllocGuardSteadyStateFusion is the allocation-regression gate run by
// CI: once warm, the depth-2 pipelined fusion hot path must perform at
// most 2 heap allocations per frame (it performs 0 today — the budget
// leaves headroom for runtime-internal noise, not for new per-frame
// garbage; the pre-refactor path allocated thousands per frame). Every
// working plane comes from the frame-store arena instead, so a regression
// here means someone reintroduced per-frame allocation into the camera→
// wavelet→pipeline data path.
func TestAllocGuardSteadyStateFusion(t *testing.T) {
	for _, tc := range []struct {
		engine  EngineKind
		split   string
		depth   int
		rule    Rule
		workers int
		fusion  bool
	}{
		{engine: EngineAdaptive, depth: 2},
		{engine: EngineNEON, depth: 2},
		{engine: EngineFPGA, depth: 2},
		{engine: EngineAdaptive, split: SplitOracle, depth: 2},
		{engine: EngineAdaptive, depth: 0}, // classic sequential executor
		// The windowed rule used to allocate two activity planes per band
		// per frame; through the fusion workspace it must allocate none.
		{engine: EngineAdaptive, depth: 2, rule: RuleWindowEnergy},
		// The tiled multi-worker kernel path: dispatch through reusable
		// task boxes and per-worker pooled scratch must stay 0-alloc too.
		{engine: EngineNEON, depth: 2, rule: RuleWindowEnergy, workers: 4},
		// The operator-fused single-traversal path: block staging, plan
		// cache and quad-layout planes must all come from pooled scratch,
		// sequential and across a worker pool alike.
		{engine: EngineNEON, depth: 0, workers: 1, fusion: true},
		{engine: EngineNEON, depth: 0, workers: 4, fusion: true},
	} {
		name := fmt.Sprintf("%s%s/depth%d", tc.engine, tc.split, tc.depth)
		if tc.rule != nil {
			name += "/" + tc.rule.Name()
		}
		if tc.workers > 0 {
			name += fmt.Sprintf("/workers%d", tc.workers)
		}
		if tc.fusion {
			name += "/fused"
		}
		t.Run(name, func(t *testing.T) {
			if tc.workers > 1 {
				prev := runtime.GOMAXPROCS(tc.workers)
				defer runtime.GOMAXPROCS(prev)
			}
			fu, err := New(Options{
				Engine:        tc.engine,
				SplitPolicy:   tc.split,
				IncludeIO:     true,
				PipelineDepth: tc.depth,
				Rule:          tc.rule,
				KernelWorkers: tc.workers,
				KernelFusion:  tc.fusion,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(SystemConfig{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			sys.Scene.Advance()
			res, err := sys.Step()
			if err != nil {
				t.Fatal(err)
			}
			vis, ir := res.Visible, res.Thermal
			for i := 0; i < allocGuardWarmup; i++ {
				out, _, err := fu.Fuse(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				out.Release()
			}
			allocs := testing.AllocsPerRun(20, func() {
				out, _, err := fu.Fuse(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				out.Release()
			})
			if allocs > 2 {
				t.Fatalf("steady-state fusion allocates %.1f times per frame, want <= 2", allocs)
			}
			st := fu.PoolStats()
			if st.Hits == 0 || st.Outstanding < 0 {
				t.Fatalf("pool not engaged: %+v", st)
			}
			if fs := fu.FusionStats(); tc.fusion && fs.FusedFrames == 0 {
				t.Fatalf("operator fusion requested but no frames fused: %+v", fs)
			}
			fu.Close()
		})
	}
}

package zynqfusion

import (
	"strings"
	"testing"
)

func TestNewRejectsNegativeLevels(t *testing.T) {
	if _, err := New(Options{Levels: -1}); err == nil {
		t.Fatal("negative Levels should be rejected at New")
	}
}

func TestFuseValidatesLevelsAgainstFrameSize(t *testing.T) {
	// 6 levels on a 32x24 frame is over-deep: MaxLevels(32, 24) < 6.
	fuser, err := New(Options{Levels: 6})
	if err != nil {
		t.Fatal(err)
	}
	vis, ir := NewFrame(32, 24), NewFrame(32, 24)
	_, _, err = fuser.Fuse(vis, ir)
	if err == nil {
		t.Fatal("over-deep decomposition must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "MaxLevels") || !strings.Contains(msg, "Levels") {
		t.Fatalf("error should name Options.Levels and MaxLevels, got: %v", err)
	}
	// A frame size deep enough for 6 levels still fuses.
	big, big2 := NewFrame(128, 128), NewFrame(128, 128)
	if MaxLevels(128, 128) < 6 {
		t.Skip("test geometry cannot hold 6 levels")
	}
	if _, _, err := fuser.Fuse(big, big2); err != nil {
		t.Fatalf("valid depth should fuse: %v", err)
	}
}

func TestNewFarmEndToEnd(t *testing.T) {
	fm := NewFarm(FarmConfig{})
	defer fm.Close()
	const frames = 2
	s, err := fm.Submit(StreamConfig{W: 32, H: 24, Seed: 7, Frames: frames, QueueCap: frames})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	tele := s.Telemetry()
	if tele.Fused != frames {
		t.Fatalf("fused = %d, want %d", tele.Fused, frames)
	}
	if tele.Stages.Energy <= 0 {
		t.Fatal("no modeled energy accounted")
	}
	m := fm.Metrics()
	if m.Aggregate.Fused != frames || len(m.Streams) != 1 {
		t.Fatalf("metrics aggregate %+v", m.Aggregate)
	}
}

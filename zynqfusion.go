package zynqfusion

import (
	"fmt"
	"math"
	"strconv"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
	"zynqfusion/internal/split"
	"zynqfusion/internal/wavelet"
)

// Frame is a single-channel float32 raster; see the frame package for the
// full method set (PGM I/O, sub-frame extraction, metrics).
type Frame = frame.Frame

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame { return frame.New(w, h) }

// LoadPGM reads a binary PGM file into a frame.
func LoadPGM(path string) (*Frame, error) { return frame.LoadPGM(path) }

// Stats is the per-fusion stage timing and energy record.
type Stats = pipeline.StageTimes

// Time, Energy and Power are the simulated-time, energy and power scalars
// used throughout the accounting surfaces.
type (
	Time   = sim.Time
	Energy = sim.Joules
	Power  = sim.Watts
)

// Rule is a coefficient fusion rule.
type Rule = fusion.Rule

// The built-in fusion rules.
var (
	RuleMaxMagnitude Rule = fusion.MaxMagnitude{}
	RuleAverage      Rule = fusion.Average{}
	RuleWindowEnergy Rule = fusion.WindowEnergy{R: 1}
)

// EngineKind selects the execution engine for the wavelet transforms.
type EngineKind string

// Engine configurations: the paper's three fixed modes plus the adaptive
// selectors from its conclusion.
const (
	EngineARM            EngineKind = "arm"
	EngineNEON           EngineKind = "neon"
	EngineFPGA           EngineKind = "fpga"
	EngineAdaptive       EngineKind = "adaptive"
	EngineAdaptiveOnline EngineKind = "adaptive-online"
)

// OperatingPoint is one PS voltage/frequency pair of the DVFS ladder;
// OperatingPoints lists the table (222–667 MHz, 533 MHz nominal).
type OperatingPoint = dvfs.OperatingPoint

// OperatingPoints returns the PS operating-point table in ascending
// frequency order. The 533 MHz entry is the paper's calibrated
// configuration; every timing and energy at that point is bit-for-bit
// the fixed-platform model.
func OperatingPoints() []OperatingPoint { return dvfs.List() }

// DVFS governor policy names for StreamConfig.DVFSPolicy.
const (
	// DVFSNominal pins the calibrated 533 MHz point (the default).
	DVFSNominal = dvfs.PolicyNominal
	// DVFSRaceToIdle fuses every frame at the fastest point and idles
	// out the deadline slack.
	DVFSRaceToIdle = dvfs.PolicyRaceToIdle
	// DVFSDeadlinePace fuses each frame at the lowest operating point
	// whose predicted frame time meets StreamConfig.DeadlineMS.
	DVFSDeadlinePace = dvfs.PolicyDeadlinePace
)

// Split policies for Options.SplitPolicy (and, prefixed with "split-",
// for StreamConfig.Engine): cooperative CPU+FPGA split execution
// partitions each wavelet level across NEON and the wave engine
// concurrently instead of routing it to exactly one engine.
const (
	// SplitOracle balances the two lanes at the calibrated cost-model
	// rates per (row width, direction, operating point).
	SplitOracle = "oracle"
	// SplitAdaptive hill-climbs the FPGA share online from the observed
	// per-lane pass times, seeded by the cost-model probe.
	SplitAdaptive = "adaptive"
	// SplitEnergy minimizes modeled joules per level rather than time.
	SplitEnergy = "energy"
)

// Options configures a Fuser.
type Options struct {
	// Engine selects the execution engine (default EngineAdaptive).
	Engine EngineKind
	// Levels is the DT-CWT decomposition depth (default 3).
	Levels int
	// Rule is the coefficient fusion rule (default max-magnitude).
	Rule Rule
	// IncludeIO charges the modeled capture and display stages in Stats
	// (default off: transform-only accounting).
	IncludeIO bool
	// ManualSIMD selects hand-written NEON intrinsics over the
	// auto-vectorized kernels when Engine is EngineNEON.
	ManualSIMD bool
	// OperatingPoint pins the PS voltage/frequency point by name
	// ("222MHz" … "667MHz", case-insensitive, "MHz" optional). Empty
	// selects the nominal 533 MHz calibration point.
	OperatingPoint string
	// SplitPolicy enables cooperative CPU+FPGA split execution:
	// SplitOracle, SplitAdaptive, SplitEnergy, or a fixed FPGA share in
	// [0, 1] written as a decimal ("0.4"). Requires the (default)
	// adaptive engine. Empty keeps exclusive per-level routing; the
	// degenerate shares "0" and "1" reproduce the exclusive NEON and FPGA
	// engines bit-for-bit.
	SplitPolicy string
	// PipelineDepth bounds the frames in flight of the inter-frame
	// pipelined executor, which overlaps the capture/forward/fuse/inverse/
	// display stages of consecutive frames the way the paper's
	// double-buffered capture→transform→display hardware chain does. 0
	// (the default) keeps the classic sequential executor; 1 runs the
	// pipelined executor degenerated to the sequential schedule
	// (bit-for-bit identical times, joules and pixels); 2..MaxPipelineDepth
	// overlap that many frames, driving the steady-state frame period
	// toward the slowest stage (plus the calibrated buffer-handoff charge)
	// instead of the stage sum. Pixels are identical at every depth.
	// Negative values and depths beyond MaxPipelineDepth are rejected.
	PipelineDepth int
	// BufferPool sizes the fuser's frame-store arena, the pool every
	// working plane — transform pyramids, per-level scratch, fused
	// outputs — is leased from, modeled on the board's fixed DDR frame
	// stores. The zero value is an unbounded private pool (pooling is
	// always on; in steady state a fuser allocates nothing per frame).
	// CapBytes > 0 makes the ceiling hard: a frame whose working set
	// cannot fit fails with a descriptive error instead of growing.
	// PerStream only applies to farms (FarmConfig.BufferPool). The frame
	// returned by Fuse is leased from this arena: Release it when done to
	// recycle the plane, or simply drop it (the pool never reuses a plane
	// that has not been released).
	BufferPool BufferPool
	// KernelWorkers sizes the goroutine pool the cache-blocked wavelet and
	// fusion hot loops tile across: 0 (the default) selects GOMAXPROCS, 1
	// runs fully sequential on the calling goroutine, and any value is
	// capped at GOMAXPROCS. Worker count is pure host-side scheduling — it
	// never changes results or the modeled platform accounting: compute
	// runs in disjoint tiles and every cycle/energy charge replays in
	// sequential order, so pixels, Stats and energy are bit-for-bit
	// identical at every setting. Negative values are rejected.
	KernelWorkers int
	// KernelFusion enables the operator-fusion pass: a per-shape planner
	// fuses the visible and infrared forward transforms into one
	// interleaved dual-stream traversal and, for the built-in fusion
	// rules, runs the tree combination + rule + distribution per tile
	// directly in quad layout, never materializing the intermediate
	// complex band planes of any pyramid. Like KernelWorkers this is pure
	// host-side scheduling: the planner only fuses when it can prove the
	// results unchanged, so pixels, Stats and energy stay bit-for-bit
	// identical whether fusion is on or off. Engines that veto tiling
	// (the emulated NEON path, the FPGA and adaptive engines) run
	// unfused, as does the inter-frame pipelined executor (PipelineDepth
	// >= 2); the sequential executor on the ARM and fast-NEON engines
	// fuses fully.
	KernelFusion bool
}

// BufferPool is the frame-store arena budget of a Fuser or Farm: CapBytes
// bounds the whole arena, PerStream each farm stream's sub-pool. See
// Options.BufferPool and FarmConfig.BufferPool.
type BufferPool = bufpool.Budget

// PoolStats is a frame-store arena's telemetry: hit/miss counts,
// outstanding leases, high-water footprint.
type PoolStats = bufpool.Stats

// MaxPipelineDepth is the largest accepted Options.PipelineDepth — a
// sanity bound well above the point where throughput saturates (the
// stage-station count, at most 6); deeper values behave like the
// saturated pipeline and only cost frame-store memory.
const MaxPipelineDepth = pipeline.MaxDepth

// PipelineStats is the pipelined executor's cumulative occupancy record
// (fill latency, makespan, mean frames in flight, per-stage utilization).
type PipelineStats = pipeline.PipelineStats

// StageOccupancy is one pipeline station's share of the cumulative record.
type StageOccupancy = pipeline.StageOccupancy

// FusionStats is the operator-fusion pass's activity record: the active
// plan, frames fused vs unfused, and the complex band planes (and bytes)
// the fused data path never materialized. See Options.KernelFusion.
type FusionStats = pipeline.FusionStats

// Fuser fuses visible/infrared frame pairs with full simulated platform
// accounting. It is not safe for concurrent use; create one per goroutine,
// or use NewFarm to run many governed streams concurrently.
type Fuser struct {
	pl   *pipeline.Fuser
	pp   *pipeline.PipelinedFuser // nil for the classic sequential executor
	kind EngineKind
}

// New builds a Fuser.
func New(opts Options) (*Fuser, error) {
	if opts.Engine == "" {
		opts.Engine = EngineAdaptive
	}
	if opts.Levels < 0 {
		return nil, fmt.Errorf("zynqfusion: Options.Levels must be non-negative, got %d", opts.Levels)
	}
	if opts.PipelineDepth < 0 {
		return nil, fmt.Errorf("zynqfusion: Options.PipelineDepth must be non-negative, got %d (0 = sequential, 2+ overlaps frames)", opts.PipelineDepth)
	}
	if opts.PipelineDepth > MaxPipelineDepth {
		return nil, fmt.Errorf("zynqfusion: Options.PipelineDepth = %d exceeds MaxPipelineDepth %d; depth past the stage count buys nothing", opts.PipelineDepth, MaxPipelineDepth)
	}
	if opts.KernelWorkers < 0 {
		return nil, fmt.Errorf("zynqfusion: Options.KernelWorkers must be non-negative, got %d (0 = GOMAXPROCS, 1 = sequential)", opts.KernelWorkers)
	}
	op := dvfs.Nominal()
	if opts.OperatingPoint != "" {
		var ok bool
		if op, ok = dvfs.Lookup(opts.OperatingPoint); !ok {
			return nil, fmt.Errorf("zynqfusion: unknown operating point %q (want one of %v)",
				opts.OperatingPoint, dvfs.Names())
		}
	}
	eng, err := buildEngine(opts, op)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		Levels:        opts.Levels,
		Rule:          opts.Rule,
		IncludeIO:     opts.IncludeIO,
		Pool:          bufpool.New(bufpool.Options{CapBytes: opts.BufferPool.CapBytes}),
		KernelWorkers: opts.KernelWorkers,
		KernelFusion:  opts.KernelFusion,
	}
	f := &Fuser{pl: pipeline.New(eng, cfg), kind: opts.Engine}
	if opts.PipelineDepth >= 1 {
		pp, err := pipeline.NewPipelined(f.pl, opts.PipelineDepth)
		if err != nil {
			return nil, fmt.Errorf("zynqfusion: %w", err)
		}
		f.pp = pp
	}
	return f, nil
}

func buildEngine(opts Options, op dvfs.OperatingPoint) (engine.Engine, error) {
	if opts.SplitPolicy != "" {
		if opts.Engine != EngineAdaptive {
			return nil, fmt.Errorf("zynqfusion: Options.SplitPolicy requires the adaptive engine, not %q", opts.Engine)
		}
		pol, err := splitPolicyFor(opts.SplitPolicy, op)
		if err != nil {
			return nil, err
		}
		return sched.NewAdaptiveAt(sched.SplitDriven{S: pol}, op), nil
	}
	switch opts.Engine {
	case EngineARM:
		return engine.NewARMAt(op), nil
	case EngineNEON:
		return engine.NewNEONAt(opts.ManualSIMD, op), nil
	case EngineFPGA:
		return engine.NewFPGAAt(op), nil
	case EngineAdaptive:
		// The NEON/FPGA crossover is frequency-aware: it shifts with the
		// PS clock because the wave engine's PL domain does not scale.
		return sched.NewAdaptiveAt(sched.ThresholdForClock(op.Clock()), op), nil
	case EngineAdaptiveOnline:
		return sched.NewAdaptiveAt(sched.NewOnline(2), op), nil
	default:
		return nil, fmt.Errorf("zynqfusion: unknown engine %q", opts.Engine)
	}
}

// splitPolicyFor resolves an Options.SplitPolicy value at an operating
// point: a named policy or a fixed FPGA share.
func splitPolicyFor(name string, op dvfs.OperatingPoint) (split.Policy, error) {
	switch name {
	case SplitOracle:
		return split.NewOracle(op), nil
	case SplitAdaptive:
		return split.NewAdaptiveSplit(op), nil
	case SplitEnergy:
		return split.NewEnergySplit(op), nil
	}
	frac, err := strconv.ParseFloat(name, 64)
	if err != nil || math.IsNaN(frac) || frac < 0 || frac > 1 {
		return nil, fmt.Errorf("zynqfusion: unknown split policy %q (want %q, %q, %q or a share in [0,1])",
			name, SplitOracle, SplitAdaptive, SplitEnergy)
	}
	return split.Fixed{Frac: frac}, nil
}

// Engine reports the configured engine kind.
func (f *Fuser) Engine() EngineKind { return f.kind }

// PoolStats reports the fuser's frame-store arena telemetry.
func (f *Fuser) PoolStats() PoolStats { return f.pl.Pool().Stats() }

// FusionStats reports the operator-fusion pass's accumulated counters.
// All-zero unless Options.KernelFusion is set and the planner accepted
// the configuration.
func (f *Fuser) FusionStats() FusionStats { return f.pl.FusionStats() }

// Close releases the fuser's workspace planes back to its arena. Once the
// caller has also released (or dropped) the fused frames it still holds,
// the arena's Outstanding count is zero. The fuser remains usable after
// Close; the workspaces are re-leased on the next Fuse.
func (f *Fuser) Close() { f.pl.Close() }

// OperatingPoint reports the PS voltage/frequency point the fuser
// accounts at.
func (f *Fuser) OperatingPoint() OperatingPoint { return f.pl.Point() }

// Fuse combines one visible/infrared frame pair into a fused frame,
// returning the simulated stage times and energy. The configured
// decomposition depth is validated against MaxLevels for the frame size
// before any work runs.
func (f *Fuser) Fuse(vis, ir *Frame) (*Frame, Stats, error) {
	if vis != nil && ir != nil && vis.SameSize(ir) {
		levels := f.pl.Config().Levels
		if max := wavelet.MaxLevels(vis.W, vis.H); levels > max {
			return nil, Stats{}, fmt.Errorf(
				"zynqfusion: Options.Levels = %d exceeds MaxLevels(%d, %d) = %d; reduce Levels or fuse larger frames",
				levels, vis.W, vis.H, max)
		}
	}
	if f.pp != nil {
		return f.pp.FuseFrames(vis, ir)
	}
	return f.pl.FuseFrames(vis, ir)
}

// PipelineStats reports the pipelined executor's cumulative occupancy
// record; ok is false for sequential (PipelineDepth 0) fusers.
func (f *Fuser) PipelineStats() (PipelineStats, bool) {
	if f.pp == nil {
		return PipelineStats{}, false
	}
	return f.pp.Stats(), true
}

// PipelineDepth reports the configured in-flight frame budget (0 for the
// classic sequential executor).
func (f *Fuser) PipelineDepth() int {
	if f.pp == nil {
		return 0
	}
	return f.pp.Depth()
}

// MaxLevels reports the deepest usable decomposition for a frame size.
func MaxLevels(w, h int) int { return wavelet.MaxLevels(w, h) }

// Farm types: a farm runs many concurrent capture→fuse→display streams
// over per-worker fusers, with a shared energy governor arbitrating the
// single modeled FPGA wave engine. See the farm package for details.
type (
	// Farm is the multi-stream fusion farm.
	Farm = farm.Farm
	// FarmConfig configures a farm (power budget, queue defaults).
	FarmConfig = farm.Config
	// StreamConfig describes one farm stream.
	StreamConfig = farm.StreamConfig
	// Stream is one running capture→fuse→display pipeline.
	Stream = farm.Stream
	// StreamTelemetry is a stream's accumulated record.
	StreamTelemetry = farm.StreamTelemetry
	// FarmMetrics is the farm-wide snapshot served by fusiond's /metrics.
	FarmMetrics = farm.Metrics
)

// SLO engine types: streams declare service-level objectives (latency,
// deadline-hit ratio, energy per frame, drop rate) that the farm scores
// over sliding windows with Google-SRE-style multi-window burn-rate
// alerting, a cumulative error-budget account, a 0-100 health score, and
// a closed loop — burning streams are degraded one rung at a time
// (pipeline-depth demotion, DVFS down-clock, queue shrink, load
// shedding) and new-stream admission is refused while the farm budget
// burns. See the slo package and FarmConfig.SLO / StreamConfig.SLO.
type (
	// SLO is one stream's objective declaration (StreamConfig.SLO).
	SLO = slo.SLO
	// SLORules is the farm-level SLO rule set (FarmConfig.SLO), the shape
	// of a fusiond `-slo rules.json` file.
	SLORules = slo.Rules
	// SLOStatus is a stream's scored SLO state: per-SLI budgets, window
	// burn rates, alert states and the composite health score
	// (StreamTelemetry.SLO, fusiond's GET /slo).
	SLOStatus = slo.Status
)

// LoadSLORules reads and validates a rules.json file (fusiond -slo).
func LoadSLORules(path string) (*SLORules, error) { return slo.LoadRules(path) }

// ErrSLOBurning is returned by Farm.Submit when admission control
// refuses a new stream because the farm's error budget is burning.
var ErrSLOBurning = farm.ErrSLOBurning

// NewFarm builds an empty fusion farm. Submit streams, read Metrics, and
// Close when done; cmd/fusiond serves the same farm over HTTP.
func NewFarm(cfg FarmConfig) *Farm { return farm.New(cfg) }

package zynqfusion

import (
	"fmt"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// Frame is a single-channel float32 raster; see the frame package for the
// full method set (PGM I/O, sub-frame extraction, metrics).
type Frame = frame.Frame

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame { return frame.New(w, h) }

// LoadPGM reads a binary PGM file into a frame.
func LoadPGM(path string) (*Frame, error) { return frame.LoadPGM(path) }

// Stats is the per-fusion stage timing and energy record.
type Stats = pipeline.StageTimes

// Time and Energy are the simulated-time and energy scalars used in Stats.
type (
	Time   = sim.Time
	Energy = sim.Joules
)

// Rule is a coefficient fusion rule.
type Rule = fusion.Rule

// The built-in fusion rules.
var (
	RuleMaxMagnitude Rule = fusion.MaxMagnitude{}
	RuleAverage      Rule = fusion.Average{}
	RuleWindowEnergy Rule = fusion.WindowEnergy{R: 1}
)

// EngineKind selects the execution engine for the wavelet transforms.
type EngineKind string

// Engine configurations: the paper's three fixed modes plus the adaptive
// selectors from its conclusion.
const (
	EngineARM            EngineKind = "arm"
	EngineNEON           EngineKind = "neon"
	EngineFPGA           EngineKind = "fpga"
	EngineAdaptive       EngineKind = "adaptive"
	EngineAdaptiveOnline EngineKind = "adaptive-online"
)

// Options configures a Fuser.
type Options struct {
	// Engine selects the execution engine (default EngineAdaptive).
	Engine EngineKind
	// Levels is the DT-CWT decomposition depth (default 3).
	Levels int
	// Rule is the coefficient fusion rule (default max-magnitude).
	Rule Rule
	// IncludeIO charges the modeled capture and display stages in Stats
	// (default off: transform-only accounting).
	IncludeIO bool
	// ManualSIMD selects hand-written NEON intrinsics over the
	// auto-vectorized kernels when Engine is EngineNEON.
	ManualSIMD bool
}

// Fuser fuses visible/infrared frame pairs with full simulated platform
// accounting. It is not safe for concurrent use; create one per goroutine.
type Fuser struct {
	pl   *pipeline.Fuser
	kind EngineKind
}

// New builds a Fuser.
func New(opts Options) (*Fuser, error) {
	if opts.Engine == "" {
		opts.Engine = EngineAdaptive
	}
	eng, err := buildEngine(opts)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		Levels:    opts.Levels,
		Rule:      opts.Rule,
		IncludeIO: opts.IncludeIO,
	}
	return &Fuser{pl: pipeline.New(eng, cfg), kind: opts.Engine}, nil
}

func buildEngine(opts Options) (engine.Engine, error) {
	switch opts.Engine {
	case EngineARM:
		return engine.NewARM(), nil
	case EngineNEON:
		return engine.NewNEON(opts.ManualSIMD), nil
	case EngineFPGA:
		return engine.NewFPGA(), nil
	case EngineAdaptive:
		return sched.NewAdaptive(sched.Threshold{}), nil
	case EngineAdaptiveOnline:
		return sched.NewAdaptive(sched.NewOnline(2)), nil
	default:
		return nil, fmt.Errorf("zynqfusion: unknown engine %q", opts.Engine)
	}
}

// Engine reports the configured engine kind.
func (f *Fuser) Engine() EngineKind { return f.kind }

// Fuse combines one visible/infrared frame pair into a fused frame,
// returning the simulated stage times and energy.
func (f *Fuser) Fuse(vis, ir *Frame) (*Frame, Stats, error) {
	return f.pl.FuseFrames(vis, ir)
}

// MaxLevels reports the deepest usable decomposition for a frame size.
func MaxLevels(w, h int) int { return wavelet.MaxLevels(w, h) }

package zynqfusion

import (
	"fmt"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// Frame is a single-channel float32 raster; see the frame package for the
// full method set (PGM I/O, sub-frame extraction, metrics).
type Frame = frame.Frame

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame { return frame.New(w, h) }

// LoadPGM reads a binary PGM file into a frame.
func LoadPGM(path string) (*Frame, error) { return frame.LoadPGM(path) }

// Stats is the per-fusion stage timing and energy record.
type Stats = pipeline.StageTimes

// Time, Energy and Power are the simulated-time, energy and power scalars
// used throughout the accounting surfaces.
type (
	Time   = sim.Time
	Energy = sim.Joules
	Power  = sim.Watts
)

// Rule is a coefficient fusion rule.
type Rule = fusion.Rule

// The built-in fusion rules.
var (
	RuleMaxMagnitude Rule = fusion.MaxMagnitude{}
	RuleAverage      Rule = fusion.Average{}
	RuleWindowEnergy Rule = fusion.WindowEnergy{R: 1}
)

// EngineKind selects the execution engine for the wavelet transforms.
type EngineKind string

// Engine configurations: the paper's three fixed modes plus the adaptive
// selectors from its conclusion.
const (
	EngineARM            EngineKind = "arm"
	EngineNEON           EngineKind = "neon"
	EngineFPGA           EngineKind = "fpga"
	EngineAdaptive       EngineKind = "adaptive"
	EngineAdaptiveOnline EngineKind = "adaptive-online"
)

// Options configures a Fuser.
type Options struct {
	// Engine selects the execution engine (default EngineAdaptive).
	Engine EngineKind
	// Levels is the DT-CWT decomposition depth (default 3).
	Levels int
	// Rule is the coefficient fusion rule (default max-magnitude).
	Rule Rule
	// IncludeIO charges the modeled capture and display stages in Stats
	// (default off: transform-only accounting).
	IncludeIO bool
	// ManualSIMD selects hand-written NEON intrinsics over the
	// auto-vectorized kernels when Engine is EngineNEON.
	ManualSIMD bool
}

// Fuser fuses visible/infrared frame pairs with full simulated platform
// accounting. It is not safe for concurrent use; create one per goroutine,
// or use NewFarm to run many governed streams concurrently.
type Fuser struct {
	pl   *pipeline.Fuser
	kind EngineKind
}

// New builds a Fuser.
func New(opts Options) (*Fuser, error) {
	if opts.Engine == "" {
		opts.Engine = EngineAdaptive
	}
	if opts.Levels < 0 {
		return nil, fmt.Errorf("zynqfusion: Options.Levels must be non-negative, got %d", opts.Levels)
	}
	eng, err := buildEngine(opts)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		Levels:    opts.Levels,
		Rule:      opts.Rule,
		IncludeIO: opts.IncludeIO,
	}
	return &Fuser{pl: pipeline.New(eng, cfg), kind: opts.Engine}, nil
}

func buildEngine(opts Options) (engine.Engine, error) {
	switch opts.Engine {
	case EngineARM:
		return engine.NewARM(), nil
	case EngineNEON:
		return engine.NewNEON(opts.ManualSIMD), nil
	case EngineFPGA:
		return engine.NewFPGA(), nil
	case EngineAdaptive:
		return sched.NewAdaptive(sched.Threshold{}), nil
	case EngineAdaptiveOnline:
		return sched.NewAdaptive(sched.NewOnline(2)), nil
	default:
		return nil, fmt.Errorf("zynqfusion: unknown engine %q", opts.Engine)
	}
}

// Engine reports the configured engine kind.
func (f *Fuser) Engine() EngineKind { return f.kind }

// Fuse combines one visible/infrared frame pair into a fused frame,
// returning the simulated stage times and energy. The configured
// decomposition depth is validated against MaxLevels for the frame size
// before any work runs.
func (f *Fuser) Fuse(vis, ir *Frame) (*Frame, Stats, error) {
	if vis != nil && ir != nil && vis.SameSize(ir) {
		levels := f.pl.Config().Levels
		if max := wavelet.MaxLevels(vis.W, vis.H); levels > max {
			return nil, Stats{}, fmt.Errorf(
				"zynqfusion: Options.Levels = %d exceeds MaxLevels(%d, %d) = %d; reduce Levels or fuse larger frames",
				levels, vis.W, vis.H, max)
		}
	}
	return f.pl.FuseFrames(vis, ir)
}

// MaxLevels reports the deepest usable decomposition for a frame size.
func MaxLevels(w, h int) int { return wavelet.MaxLevels(w, h) }

// Farm types: a farm runs many concurrent capture→fuse→display streams
// over per-worker fusers, with a shared energy governor arbitrating the
// single modeled FPGA wave engine. See the farm package for details.
type (
	// Farm is the multi-stream fusion farm.
	Farm = farm.Farm
	// FarmConfig configures a farm (power budget, queue defaults).
	FarmConfig = farm.Config
	// StreamConfig describes one farm stream.
	StreamConfig = farm.StreamConfig
	// Stream is one running capture→fuse→display pipeline.
	Stream = farm.Stream
	// StreamTelemetry is a stream's accumulated record.
	StreamTelemetry = farm.StreamTelemetry
	// FarmMetrics is the farm-wide snapshot served by fusiond's /metrics.
	FarmMetrics = farm.Metrics
)

// NewFarm builds an empty fusion farm. Submit streams, read Metrics, and
// Close when done; cmd/fusiond serves the same farm over HTTP.
func NewFarm(cfg FarmConfig) *Farm { return farm.New(cfg) }

package zynqfusion

import (
	"strings"
	"testing"

	"zynqfusion/internal/camera"
)

func TestOperatingPointsTable(t *testing.T) {
	pts := OperatingPoints()
	if len(pts) == 0 {
		t.Fatal("no operating points exported")
	}
	var sawNominal bool
	for _, op := range pts {
		if op.Name == "533MHz" {
			sawNominal = true
		}
	}
	if !sawNominal {
		t.Errorf("operating-point table %v lacks the 533MHz calibration anchor", pts)
	}
}

func TestNewRejectsUnknownOperatingPoint(t *testing.T) {
	_, err := New(Options{OperatingPoint: "9GHz"})
	if err == nil || !strings.Contains(err.Error(), "operating point") {
		t.Fatalf("unknown operating point not rejected: %v", err)
	}
}

func TestOperatingPointScalesFuseTime(t *testing.T) {
	sc := camera.NewScene(64, 48, 3)
	vis, ir := sc.Visible(), sc.Thermal()

	fuse := func(point string) Stats {
		t.Helper()
		f, err := New(Options{Engine: EngineNEON, OperatingPoint: point})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := f.Fuse(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	nominal := fuse("")
	slow := fuse("222MHz")
	fast := fuse("667mhz") // case-insensitive lookup
	if !(slow.Total > nominal.Total && nominal.Total > fast.Total) {
		t.Errorf("fuse time not monotone in operating point: 222=%v 533=%v 667=%v",
			slow.Total, nominal.Total, fast.Total)
	}

	// The default must be the nominal point, bit-for-bit.
	pinned := fuse("533MHz")
	if nominal != pinned {
		t.Errorf("default differs from pinned 533MHz:\n%+v\n%+v", nominal, pinned)
	}

	f, err := New(Options{OperatingPoint: "444MHz"})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.OperatingPoint(); got.Name != "444MHz" {
		t.Errorf("OperatingPoint() = %v, want 444MHz", got)
	}
}

func TestFarmStreamDVFSOverHTTPShapes(t *testing.T) {
	// StreamConfig carries the deadline/policy fields through the public
	// alias; a deadline-paced stream reports residency and zero misses
	// under generous slack.
	fm := NewFarm(FarmConfig{})
	defer fm.Close()
	s, err := fm.Submit(StreamConfig{
		W: 64, H: 48, Seed: 1, Engine: "neon",
		Frames: 2, QueueCap: 2,
		DeadlineMS: 1000, DVFSPolicy: DVFSDeadlinePace,
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	tele := s.Telemetry()
	if tele.DeadlineMisses != 0 {
		t.Errorf("misses = %d under a 1s deadline", tele.DeadlineMisses)
	}
	if len(tele.OpResidency) == 0 || tele.Point == "" {
		t.Errorf("no operating-point residency recorded: %+v", tele)
	}
	if tele.EnergyPerPeriod <= tele.EnergyPerFrame {
		t.Errorf("J/period %v should exceed J/frame %v once slack is charged",
			tele.EnergyPerPeriod, tele.EnergyPerFrame)
	}
}

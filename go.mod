module zynqfusion

go 1.24

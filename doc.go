// Package zynqfusion is a complete reproduction of "Energy Efficient Video
// Fusion with Heterogeneous CPU-FPGA Devices" (Nunez-Yanez & Sun, DATE
// 2016): a visible/infrared video fusion system built on the Dual-Tree
// Complex Wavelet Transform, with three execution engines for the
// transforms — the ARM core, the NEON SIMD engine and an FPGA wave engine
// behind a kernel driver — and the run-time adaptive engine selection the
// paper concludes is optimal.
//
// The hardware platform (ZYNQ ZC702) is modeled: kernels execute
// functionally in Go while timing and energy follow a cycle-level model
// calibrated to the paper's measurements. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-versus-measured record.
//
// Quick start:
//
//	fuser, err := zynqfusion.New(zynqfusion.Options{Engine: zynqfusion.EngineAdaptive})
//	if err != nil { ... }
//	fused, stats, err := fuser.Fuse(visibleFrame, thermalFrame)
//
// or run the full camera-to-display system:
//
//	sys, err := zynqfusion.NewSystem(zynqfusion.SystemConfig{W: 88, H: 72, Seed: 1})
//	res, err := sys.Step()
package zynqfusion
